//! Work-stealing scoped-thread executor for the experiment pipeline.
//!
//! The paper's evaluation is dozens of independent per-fold model fits
//! (Tables IV–IX), which are embarrassingly parallel. This crate
//! provides the one primitive the pipeline needs — an order-preserving
//! [`Executor::map`] — built on `std::thread::scope` with per-worker
//! deques and work stealing, and no dependencies (the build
//! environment is offline).
//!
//! **Determinism:** `map` returns results indexed by input position,
//! never by completion order, so as long as each closure call is
//! deterministic in `(index, item)`, the output is bit-identical at
//! any thread count — including 1, where the items run inline on the
//! caller's thread. Callers derive per-item RNG streams from a master
//! seed plus the index (see `elev_core::experiments`), never from
//! shared mutable state.
//!
//! Thread count resolves from the `ELEV_THREADS` environment variable
//! (falling back to `std::thread::available_parallelism`); construct
//! with [`Executor::new`] to pin it explicitly, e.g. in determinism
//! tests that compare 1-thread and 4-thread runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

thread_local! {
    /// How many sibling workers share the machine with this thread:
    /// the product of the worker counts of every enclosing
    /// [`Executor::map`] fan-out. 1 on threads outside any executor.
    static FANOUT: Cell<usize> = const { Cell::new(1) };
}

/// The number of executor workers the current thread is one of — the
/// product of the fan-out widths of every enclosing [`Executor::map`].
/// Returns 1 outside any executor (or on an inline, single-worker map).
pub fn current_fanout() -> usize {
    FANOUT.with(Cell::get).max(1)
}

/// Splits a total thread budget across the current fan-out level:
/// `max(1, budget / current_fanout())`. An experiment sweep running on
/// `W` outer workers leaves each of them `budget / W` inner threads, so
/// two-level parallelism (sweep × intra-model) never oversubscribes.
pub fn inner_threads(budget: usize) -> usize {
    (budget / current_fanout()).max(1)
}

/// Resolves the inner (nested) worker count: `ELEV_INNER_THREADS` when
/// set to a positive integer, otherwise the [`threads_from_env`] budget
/// divided by the current fan-out (see [`inner_threads`]).
pub fn inner_threads_from_env() -> usize {
    env_budget("ELEV_INNER_THREADS", || inner_threads(threads_from_env()))
}

/// Derives an independent per-item RNG seed from a master seed.
///
/// SplitMix64 finalizer over `master + (index + 1)·φ64` — the standard
/// stream-splitting recipe. Callers seed per-fold / per-item generators
/// with `mix_seed(master, i)` instead of sharing one sequential stream,
/// which is what makes results independent of execution order and
/// therefore identical at any thread count.
pub fn mix_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Reads a positive-integer worker budget from environment variable
/// `var`, falling back to `default()` when unset, unparsable, or zero.
///
/// This is the one knob-resolution path every long-lived pool in the
/// workspace shares: `ELEV_THREADS` (the executor), `ELEV_INNER_THREADS`
/// (nested executors), and `ELEV_SERVE_WORKERS` (the inference server's
/// connection workers) all spell "a positive count, or the default".
pub fn env_budget(var: &str, default: impl FnOnce() -> usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(default)
}

/// Resolves the configured worker count: `ELEV_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn threads_from_env() -> usize {
    env_budget("ELEV_THREADS", || {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// A fixed-width work-stealing executor.
///
/// Cheap to construct (no persistent pool): each [`map`](Self::map)
/// call spawns scoped workers that die when the call returns, so
/// nested use — an experiment sweep mapping over settings whose
/// closures map over folds — composes without deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (min 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// An executor sized by [`threads_from_env`].
    pub fn from_env() -> Self {
        Self::new(threads_from_env())
    }

    /// An executor sized by [`inner_threads_from_env`] — the right
    /// width for parallelism *nested inside* an outer `map` (e.g. the
    /// per-shard workers of one model training inside an experiment
    /// sweep), so the two levels together stay within the
    /// `ELEV_THREADS` budget.
    pub fn inner_from_env() -> Self {
        Self::new(inner_threads_from_env())
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results in
    /// input order.
    ///
    /// Work distribution: item indices are dealt round-robin into one
    /// deque per worker; a worker pops from the front of its own deque
    /// and steals from the back of a victim's when it runs dry. With
    /// one worker (or one item) everything runs inline on the calling
    /// thread.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`. When one task can take down a whole
    /// batch run this is the wrong primitive — use
    /// [`try_map`](Self::try_map), which isolates each task's panic.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        // Each worker is one of `workers` siblings at this level, times
        // however many siblings the *calling* thread already had — the
        // figure `inner_threads` divides the budget by.
        let child_fanout = current_fanout().saturating_mul(workers);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    FANOUT.with(|c| c.set(child_fanout));
                    while let Some(i) = next_task(queues, w) {
                        // Send failure means the collector is gone,
                        // i.e. a sibling panicked; stop quietly and
                        // let the scope propagate that panic.
                        if tx.send((i, f(i, &items[i]))).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);

            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                out[i] = Some(r);
            }
            out.into_iter()
                .map(|slot| slot.expect("every index produced exactly one result"))
                .collect()
        })
    }

    /// Like [`map`](Self::map), but threads a per-worker scratch state
    /// through the tasks: each worker calls `init()` exactly once and
    /// passes the resulting value, by `&mut`, to every task it runs.
    ///
    /// This is the right primitive for streaming scans where each task
    /// needs a reusable buffer (a decode scratch, a file-read buffer)
    /// that is expensive to build per item: the scratch amortizes over
    /// the worker's whole share of the input. Determinism contract:
    /// the scratch must be *scratch* — `f`'s result must depend only on
    /// `(index, item)`, never on which tasks previously borrowed the
    /// state — and then the output is bit-identical at any thread
    /// count, exactly like `map`.
    ///
    /// # Panics
    ///
    /// Propagates panics from `init` and `f`.
    pub fn map_with<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut state = init();
            return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
        }

        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let child_fanout = current_fanout().saturating_mul(workers);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    FANOUT.with(|c| c.set(child_fanout));
                    let mut state = init();
                    while let Some(i) = next_task(queues, w) {
                        if tx.send((i, f(&mut state, i, &items[i]))).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);

            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                out[i] = Some(r);
            }
            out.into_iter()
                .map(|slot| slot.expect("every index produced exactly one result"))
                .collect()
        })
    }

    /// Like [`map`](Self::map), but isolates panics: each task runs
    /// under [`std::panic::catch_unwind`], a panicking task yields
    /// `Err(TaskPanic)` in its slot, and every other task still runs
    /// to completion and returns its result.
    ///
    /// Because results are slotted by input index and the panic message
    /// is a pure function of the task, the returned vector is identical
    /// at any thread count — including which tasks failed and with what
    /// message. Worker threads never unwind (the catch happens inside
    /// the task closure), so no queue lock is ever poisoned and the
    /// executor remains reusable after failures.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map(items, |i, item| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)))
                .map_err(|payload| TaskPanic { index: i, message: panic_message(payload.as_ref()) })
        })
    }
}

/// A task that panicked inside [`Executor::try_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the failed task.
    pub index: usize,
    /// The panic payload, rendered to text (`"<non-string panic>"` for
    /// exotic payload types).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

/// Pops the worker's own front task, stealing a victim's back task
/// when the local deque is empty. `None` ends the worker: the task set
/// is fixed up front, so a fully drained sweep means no work remains.
fn next_task(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(i) = queues[own].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    for offset in 1..queues.len() {
        let victim = (own + offset) % queues.len();
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        for threads in [1, 2, 4, 7] {
            let exec = Executor::new(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = exec.map(&items, |i, &x| i * 1000 + x);
            let expect: Vec<usize> = (0..100).map(|i| i * 1000 + i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..37).collect();
        let compute = |i: usize, &x: &u64| -> u64 {
            // Deterministic in (index, item) only.
            (x.wrapping_mul(0x9E3779B97F4A7C15)) ^ (i as u64)
        };
        let base = Executor::new(1).map(&items, compute);
        for threads in [2, 3, 4, 8] {
            assert_eq!(Executor::new(threads).map(&items, compute), base);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..512).collect();
        let out = Executor::new(4).map(&items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 512);
        assert_eq!(counter.load(Ordering::Relaxed), 512);
    }

    #[test]
    fn nested_maps_compose() {
        let outer: Vec<usize> = (0..6).collect();
        let exec = Executor::new(3);
        let out = exec.map(&outer, |_, &row| {
            let inner: Vec<usize> = (0..8).collect();
            exec.map(&inner, |_, &col| row * 10 + col).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|r| (0..8).map(|c| r * 10 + c).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(exec.map(&[9u8], |i, &b| (i, b)), vec![(0, 9)]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(4).map(&(0..64).collect::<Vec<_>>(), |_, &x: &i32| {
                if x == 33 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn map_with_matches_map_at_any_thread_count() {
        let items: Vec<u64> = (0..53).collect();
        let compute = |i: usize, x: u64| (x.wrapping_mul(0x9E3779B97F4A7C15)) ^ (i as u64);
        let base = Executor::new(1).map(&items, |i, &x| compute(i, x));
        for threads in [1, 2, 3, 4, 8] {
            let out = Executor::new(threads).map_with(
                &items,
                || Vec::<u64>::with_capacity(8),
                |scratch, i, &x| {
                    // The scratch is used but never influences the result.
                    scratch.clear();
                    scratch.push(x);
                    compute(i, scratch[0])
                },
            );
            assert_eq!(out, base, "threads={threads}");
        }
    }

    #[test]
    fn map_with_builds_one_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        let out = Executor::new(4).map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_, i, &x| i as u32 + x,
        );
        assert_eq!(out.len(), 256);
        assert!(inits.load(Ordering::Relaxed) <= 4, "more states than workers");
        assert!(inits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn mix_seed_separates_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(42, 0));
    }

    #[test]
    fn env_threads_parsing() {
        // Only checks the parse contract, not the env itself.
        assert_eq!(Executor::new(0).threads(), 1);
        assert!(threads_from_env() >= 1);
        assert!(inner_threads_from_env() >= 1);
    }

    #[test]
    fn fanout_is_one_outside_executors() {
        assert_eq!(current_fanout(), 1);
        assert_eq!(inner_threads(8), 8);
    }

    #[test]
    fn workers_observe_their_fanout() {
        let items: Vec<usize> = (0..16).collect();
        let fanouts = Executor::new(4).map(&items, |_, _| current_fanout());
        assert!(fanouts.iter().all(|&f| f == 4), "{fanouts:?}");
        // Inline (single-worker) maps run on the caller and keep its fanout.
        let inline = Executor::new(1).map(&items, |_, _| current_fanout());
        assert!(inline.iter().all(|&f| f == 1));
    }

    #[test]
    fn nested_fanout_multiplies_and_budget_divides() {
        let outer: Vec<usize> = (0..4).collect();
        let seen = Executor::new(2).map(&outer, |_, _| {
            let inner_items: Vec<usize> = (0..4).collect();
            let inner = Executor::new(3).map(&inner_items, |_, _| current_fanout());
            (current_fanout(), inner_threads(12), inner)
        });
        for (fanout, budget, inner) in seen {
            assert_eq!(fanout, 2);
            assert_eq!(budget, 6); // 12 threads across 2 outer workers
            assert!(inner.iter().all(|&f| f == 6), "{inner:?}");
        }
        // Back on the caller after the scope: fanout restored.
        assert_eq!(current_fanout(), 1);
    }

    #[test]
    fn inner_threads_never_zero() {
        let items = [(); 3];
        let floors = Executor::new(8).map(&items, |_, _| inner_threads(2));
        assert!(floors.iter().all(|&f| f == 1));
    }
}
