//! Property-based tests for the text-like representation.

use proptest::prelude::*;
use textrep::{
    BowVectorizer, Discretizer, FeatureSelection, TextPipeline, ValueCodebook, Vocabulary,
};

fn arb_signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..3000.0, 1..120)
}

proptest! {
    #[test]
    fn discretization_is_monotone(d in prop_oneof![
        Just(Discretizer::Floor),
        (1u32..4).prop_map(|decimals| Discretizer::FixedPrecision { decimals }),
    ], mut values in prop::collection::vec(-500.0f64..500.0, 2..50)) {
        values.sort_by(f64::total_cmp);
        let out = d.apply(&values);
        for w in out.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn discretizer_bins_are_monotone_and_roundtrip(d in prop_oneof![
        Just(Discretizer::Floor),
        (1u32..4).prop_map(|decimals| Discretizer::FixedPrecision { decimals }),
    ], a in -500.0f64..500.0, b in -500.0f64..500.0) {
        // Encoding preserves order.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.apply_one(lo) <= d.apply_one(hi));
        // Floor bins contain their values: bin ≤ e < bin + 1, and the
        // bin's representative decodes back to the same bin.
        let bin = Discretizer::Floor.apply_one(a);
        prop_assert!(bin as f64 <= a && a < (bin + 1) as f64);
        prop_assert_eq!(Discretizer::Floor.apply_one(bin as f64), bin);
    }

    #[test]
    fn ngram_window_count_is_words_minus_n_plus_1(
        n_words in 1usize..30,
        max_n in 1usize..6,
    ) {
        // Distinct two-char words, so the set never deduplicates and
        // the count per order n is exactly W − n + 1 sliding windows.
        let line: String = (0..n_words).map(|i| format!("{i:02}")).collect();
        let vocab = Vocabulary::build(&[line], 2, max_n);
        for n in 1..=max_n.min(n_words) {
            let count = vocab.entries().iter().filter(|e| e.len() == 2 * n).count();
            prop_assert_eq!(count, n_words - n + 1, "order {}", n);
        }
        let expected: usize = (1..=max_n.min(n_words)).map(|n| n_words - n + 1).sum();
        prop_assert_eq!(vocab.len(), expected);
    }

    #[test]
    fn codebook_words_are_unique_and_fixed_width(signal in prop::collection::vec(-1000i64..1000, 1..200)) {
        let cb = ValueCodebook::fit([signal.as_slice()]);
        let mut words = std::collections::HashSet::new();
        for &v in &signal {
            let w = cb.word(v).unwrap();
            prop_assert_eq!(w.len(), cb.word_size());
            words.insert(w.to_owned());
        }
        prop_assert_eq!(words.len(), cb.unique_values());
    }

    #[test]
    fn encoded_signal_length_is_exact(signal in prop::collection::vec(-50i64..50, 0..100)) {
        let cb = ValueCodebook::fit([signal.as_slice()]);
        let text = cb.encode_signal(&signal);
        prop_assert_eq!(text.len(), signal.len() * cb.word_size());
    }

    #[test]
    fn vocabulary_entries_have_valid_gram_lengths(
        lines in prop::collection::vec("[a-d]{0,24}", 0..6),
        max_n in 1usize..5,
    ) {
        // Trim lines to whole words of size 2.
        let lines: Vec<String> = lines
            .into_iter()
            .map(|l| {
                let keep = l.len() - l.len() % 2;
                l[..keep].to_owned()
            })
            .collect();
        let vocab = Vocabulary::build(&lines, 2, max_n);
        for e in vocab.entries() {
            prop_assert_eq!(e.len() % 2, 0);
            let words = e.len() / 2;
            prop_assert!(words >= 1 && words <= max_n);
        }
    }

    #[test]
    fn bow_vectors_are_probability_or_zero(
        signals in prop::collection::vec(arb_signal(), 2..8),
        max_n in 1usize..4,
    ) {
        let p = TextPipeline::fit(Discretizer::Floor, max_n, FeatureSelection::keep_all(), &signals);
        for s in &signals {
            let f = p.transform(s);
            let sum: f32 = f.iter().sum();
            prop_assert!(f.iter().all(|&v| v >= 0.0));
            prop_assert!((sum - 1.0).abs() < 1e-4 || sum == 0.0, "sum {sum}");
        }
    }

    #[test]
    fn feature_cap_is_respected(
        signals in prop::collection::vec(arb_signal(), 2..6),
        cap in 1usize..64,
    ) {
        let p = TextPipeline::fit(
            Discretizer::Floor,
            3,
            FeatureSelection { tf_threshold: 1, max_features: Some(cap) },
            &signals,
        );
        prop_assert!(p.n_features() <= cap);
    }

    #[test]
    fn tiled_fit_matches_vocabulary_fit(lines in prop::collection::vec("[ab]{0,16}", 1..6)) {
        let corpus: Vec<String> = lines;
        let via_vocab = {
            let vocab = Vocabulary::build(&corpus, 1, 3);
            BowVectorizer::fit(vocab, 1, 3, &corpus, 1)
        };
        let via_tiled = BowVectorizer::fit_tiled(
            &corpus, 1, 3,
            FeatureSelection { tf_threshold: 1, max_features: None },
        );
        prop_assert_eq!(via_vocab.features(), via_tiled.features());
        for line in &corpus {
            prop_assert_eq!(via_vocab.transform(line), via_tiled.transform(line));
        }
    }

    #[test]
    fn unseen_profiles_transform_without_panic(
        train in prop::collection::vec(arb_signal(), 2..5),
        probe in arb_signal(),
    ) {
        let p = TextPipeline::fit(Discretizer::mined(), 4, FeatureSelection::standard(), &train);
        let f = p.transform(&probe);
        prop_assert_eq!(f.len(), p.n_features());
    }
}
