//! Bag-of-words feature extraction with frequency-threshold selection.

use crate::ngrams::Vocabulary;
use serde::{Deserialize, Serialize};
use sparsemat::SparseVec;
use std::collections::HashMap;

/// Feature-selection policy for [`BowVectorizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSelection {
    /// Minimum corpus term frequency; entries below it are discarded
    /// (the paper's threshold-based selection). Values of 0 and 1 are
    /// equivalent (every counted gram survives).
    pub tf_threshold: usize,
    /// Optional hard cap: keep only the `max` most frequent features
    /// (ties broken lexicographically for determinism). The paper orders
    /// features by term frequency before discarding; the cap applies the
    /// same ordering when even thresholded vocabularies are too large.
    pub max_features: Option<usize>,
}

impl FeatureSelection {
    /// Keep everything that occurs at all.
    pub fn keep_all() -> Self {
        Self { tf_threshold: 1, max_features: None }
    }

    /// The default used by the experiment pipelines: grams occurring at
    /// least twice, capped at 4096 features.
    pub fn standard() -> Self {
        Self { tf_threshold: 2, max_features: Some(4096) }
    }
}

impl Default for FeatureSelection {
    fn default() -> Self {
        Self::standard()
    }
}

/// Bag-of-words vectorizer over an n-gram vocabulary.
///
/// Per the paper's feature extraction: "words and non-overlapping
/// occurrences of word sequences are counted, a feature vector for each
/// sample is created with each unique word sequence count being a
/// feature. Finally, the feature vectors are normalized where each
/// feature represents the probability of occurrence of each word in the
/// given sample." Counting tiles the encoded signal with non-overlapping
/// windows per gram order.
///
/// Feature selection: "features are ordered by term frequency across the
/// corpus and the features whose term frequency is under the specified
/// threshold are discarded and a new vocabulary is created."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BowVectorizer {
    /// Selected vocabulary entries, sorted (feature order).
    features: Vec<String>,
    /// entry → feature index.
    index: HashMap<String, usize>,
    word_size: usize,
    max_n: usize,
}

impl BowVectorizer {
    /// Fits the vectorizer: counts term frequencies over `corpus` and
    /// keeps vocabulary entries with `tf >= tf_threshold`.
    ///
    /// A threshold of 0 or 1 keeps the whole vocabulary.
    pub fn fit(
        vocabulary: Vocabulary,
        word_size: usize,
        max_n: usize,
        corpus: &[String],
        tf_threshold: usize,
    ) -> Self {
        let full_index: HashMap<&str, usize> = vocabulary
            .entries()
            .iter()
            .enumerate()
            .map(|(i, e)| (e.as_str(), i))
            .collect();
        let mut tf = vec![0usize; vocabulary.len()];
        for line in corpus {
            count_tiled(line, word_size, max_n, |gram| {
                if let Some(&i) = full_index.get(gram) {
                    tf[i] += 1;
                }
            });
        }
        let counted: Vec<(String, usize)> = vocabulary
            .entries()
            .iter()
            .zip(&tf)
            .map(|(e, &f)| (e.clone(), f))
            .collect();
        Self::from_counts(
            counted,
            FeatureSelection { tf_threshold, max_features: None },
            word_size,
            max_n,
        )
    }

    /// Fits directly from the corpus's non-overlapping tilings, without
    /// materializing the full sliding-window [`Vocabulary`].
    ///
    /// This produces the same classifier inputs as [`BowVectorizer::fit`]
    /// with the same selection: a gram that appears only in sliding
    /// windows (never tiled) has term frequency 0 and transforms every
    /// sample to 0 in that coordinate, so dropping it changes nothing.
    /// For the mined corpora (hundreds of thousands of words) this is
    /// the only practical path.
    pub fn fit_tiled(
        corpus: &[String],
        word_size: usize,
        max_n: usize,
        selection: FeatureSelection,
    ) -> Self {
        let mut tf: HashMap<String, usize> = HashMap::new();
        for line in corpus {
            count_tiled(line, word_size, max_n, |gram| {
                *tf.entry(gram.to_owned()).or_insert(0) += 1;
            });
        }
        Self::from_counts(tf.into_iter().collect(), selection, word_size, max_n)
    }

    fn from_counts(
        counted: Vec<(String, usize)>,
        selection: FeatureSelection,
        word_size: usize,
        max_n: usize,
    ) -> Self {
        let mut kept: Vec<(String, usize)> = counted
            .into_iter()
            .filter(|(_, f)| *f >= selection.tf_threshold.max(1))
            .collect();
        // Order by descending term frequency (paper), ties lexicographic.
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if let Some(max) = selection.max_features {
            kept.truncate(max);
        }
        let mut features: Vec<String> = kept.into_iter().map(|(e, _)| e).collect();
        features.sort_unstable();
        let index = features
            .iter()
            .enumerate()
            .map(|(i, e)| (e.clone(), i))
            .collect();
        Self { features, index, word_size, max_n }
    }

    /// The selected features, in feature-vector order.
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// Feature-vector dimensionality.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Counts non-overlapping gram occurrences in an encoded signal and
    /// L1-normalizes into occurrence probabilities.
    ///
    /// Signals matching no feature transform to the zero vector. This is
    /// the densified view of [`BowVectorizer::transform_sparse`]; the two
    /// agree coordinate-for-coordinate, bit for bit.
    pub fn transform(&self, encoded: &str) -> Vec<f32> {
        self.transform_sparse(encoded).to_dense()
    }

    /// Counts non-overlapping gram occurrences and L1-normalizes, without
    /// ever materializing a dense row.
    ///
    /// Only matched grams are touched: the matched feature indices are
    /// collected, sorted, and run-length counted, so the cost scales with
    /// the number of grams in the signal rather than with the vocabulary
    /// size. Each stored value is `count / total` — exactly the value the
    /// dense path computes for that coordinate (counts are exact small
    /// integers in `f32`, and the division is the identical operation),
    /// so densifying reproduces the dense transform bit for bit.
    pub fn transform_sparse(&self, encoded: &str) -> SparseVec {
        let mut matched: Vec<u32> = Vec::new();
        count_tiled(encoded, self.word_size, self.max_n, |gram| {
            if let Some(&i) = self.index.get(gram) {
                matched.push(i as u32);
            }
        });
        if matched.is_empty() {
            return SparseVec::zeros(self.features.len());
        }
        let total = matched.len() as f32;
        matched.sort_unstable();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut pos = 0;
        while pos < matched.len() {
            let idx = matched[pos];
            let mut run = pos + 1;
            while run < matched.len() && matched[run] == idx {
                run += 1;
            }
            indices.push(idx);
            values.push((run - pos) as f32 / total);
            pos = run;
        }
        SparseVec::new(self.features.len(), indices, values)
    }
}

/// Visits the non-overlapping word-aligned tiling of `line` for every
/// gram order `1..=max_n`.
fn count_tiled(line: &str, word_size: usize, max_n: usize, mut visit: impl FnMut(&str)) {
    let usable = line.len() - line.len() % word_size;
    let line = &line[..usable];
    for n in 1..=max_n {
        let window = word_size * n;
        if window > line.len() {
            break;
        }
        let mut start = 0;
        while start + window <= line.len() {
            visit(&line[start..start + window]);
            start += window;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(corpus: &[&str], word_size: usize, max_n: usize, threshold: usize) -> BowVectorizer {
        let corpus: Vec<String> = corpus.iter().map(|s| (*s).to_owned()).collect();
        let vocab = Vocabulary::build(&corpus, word_size, max_n);
        BowVectorizer::fit(vocab, word_size, max_n, &corpus, threshold)
    }

    #[test]
    fn counts_non_overlapping_tiles() {
        // "ababab" with word size 1, n <= 2:
        // 1-gram tiling: a,b,a,b,a,b (a:3, b:3)
        // 2-gram tiling: ab,ab,ab (ab:3, ba never in tiling)
        let v = fit(&["ababab"], 1, 2, 1);
        let f = v.transform("ababab");
        let get = |g: &str| f[v.features().iter().position(|e| e == g).unwrap()];
        // Vocabulary (sliding) has a, b, ab, ba — but "ba" is never in
        // any non-overlapping tiling, so tf("ba") = 0 and it is pruned.
        assert_eq!(v.n_features(), 3);
        assert!(!v.features().iter().any(|e| e == "ba"));
        let total = 3.0 + 3.0 + 3.0;
        assert!((get("a") - 3.0 / total).abs() < 1e-6);
        assert!((get("ab") - 3.0 / total).abs() < 1e-6);
    }

    #[test]
    fn transform_is_probability_vector() {
        let v = fit(&["abcabc", "bcabca"], 1, 3, 1);
        let f = v.transform("abcabc");
        let sum: f32 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn threshold_prunes_rare_features() {
        let all = fit(&["aa", "ab", "ab", "ab"], 2, 1, 1);
        let pruned = fit(&["aa", "ab", "ab", "ab"], 2, 1, 2);
        assert_eq!(all.n_features(), 2);
        assert_eq!(pruned.n_features(), 1);
        assert_eq!(pruned.features(), &["ab".to_owned()]);
    }

    #[test]
    fn unknown_grams_transform_to_zero() {
        let v = fit(&["abab"], 2, 1, 1);
        let f = v.transform("zzzz");
        assert!(f.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn partial_trailing_word_is_ignored() {
        let v = fit(&["abab"], 2, 1, 1);
        // 5-char input: trailing 'a' is not a whole word.
        let f = v.transform("ababa");
        let sum: f32 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn feature_order_is_deterministic() {
        let a = fit(&["abcd", "cdab"], 2, 2, 1);
        let b = fit(&["abcd", "cdab"], 2, 2, 1);
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn fit_tiled_matches_vocabulary_fit() {
        let corpus: Vec<String> =
            ["abcabc", "bcabca", "cababab"].iter().map(|s| (*s).to_owned()).collect();
        let via_vocab = {
            let vocab = Vocabulary::build(&corpus, 1, 3);
            BowVectorizer::fit(vocab, 1, 3, &corpus, 2)
        };
        let via_tiled = BowVectorizer::fit_tiled(
            &corpus,
            1,
            3,
            FeatureSelection { tf_threshold: 2, max_features: None },
        );
        assert_eq!(via_vocab.features(), via_tiled.features());
        for line in &corpus {
            assert_eq!(via_vocab.transform(line), via_tiled.transform(line));
        }
    }

    #[test]
    fn max_features_keeps_most_frequent() {
        let corpus: Vec<String> = vec!["aaaab".into(), "aaaac".into()];
        let v = BowVectorizer::fit_tiled(
            &corpus,
            1,
            1,
            FeatureSelection { tf_threshold: 1, max_features: Some(1) },
        );
        assert_eq!(v.features(), &["a".to_owned()]);
    }

    #[test]
    fn sparse_transform_roundtrips_to_dense_bitwise() {
        let v = fit(&["abcabc", "bcabca", "cababab"], 1, 3, 1);
        for line in ["abcabc", "bcabca", "cababab", "zzzz", "abca"] {
            let dense = v.transform(line);
            let sparse = v.transform_sparse(line);
            assert_eq!(sparse.dim(), dense.len());
            let densified = sparse.to_dense();
            for (a, b) in dense.iter().zip(&densified) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Every stored entry is an actual nonzero.
            assert!(sparse.values().iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn sparse_transform_of_unmatched_signal_is_empty() {
        let v = fit(&["abab"], 2, 1, 1);
        let s = v.transform_sparse("zzzz");
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.dim(), v.n_features());
    }

    #[test]
    fn standard_selection_defaults() {
        let s = FeatureSelection::standard();
        assert_eq!(s.tf_threshold, 2);
        assert_eq!(s.max_features, Some(4096));
        assert_eq!(FeatureSelection::default(), s);
    }
}
