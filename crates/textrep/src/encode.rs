//! Word-size decision and text encoding (paper Fig. 5, steps 2–3).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The encoding alphabet (lowercase Latin letters, `l = 26`).
pub const ALPHABET: &[u8; 26] = b"abcdefghijklmnopqrstuvwxyz";

/// The alphabet length `l` in the paper's `w = log_l c`.
pub const ALPHABET_LEN: usize = ALPHABET.len();

/// Mapping from discrete elevation values to fixed-width words.
///
/// The word size is `w = ⌈log_l c⌉` (minimum width that can address all
/// `c` unique values with alphabet length `l`), and each unique value is
/// assigned the base-`l` spelling of its rank. Ranks follow value order,
/// so the mapping is deterministic for a given corpus.
///
/// # Examples
///
/// ```
/// use textrep::ValueCodebook;
///
/// let signals = [vec![3i64, 1, 2], vec![2, 2, 4]];
/// let cb = ValueCodebook::fit(signals.iter().map(|s| s.as_slice()));
/// assert_eq!(cb.unique_values(), 4);
/// assert_eq!(cb.word_size(), 1); // 26^1 >= 4
/// let text = cb.encode_signal(&[1, 2, 3, 4]);
/// assert_eq!(text, "abcd");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueCodebook {
    /// value → word (BTreeMap keeps deterministic, ordered iteration).
    words: BTreeMap<i64, String>,
    word_size: usize,
}

impl ValueCodebook {
    /// Fits a codebook over every discrete signal in the corpus.
    ///
    /// An empty corpus yields a codebook with word size 1 and no words.
    pub fn fit<'a, I: IntoIterator<Item = &'a [i64]>>(signals: I) -> Self {
        let mut unique: BTreeMap<i64, String> = BTreeMap::new();
        for signal in signals {
            for &v in signal {
                unique.entry(v).or_default();
            }
        }
        let c = unique.len();
        let word_size = word_size_for(c);
        for (rank, (_, word)) in unique.iter_mut().enumerate() {
            *word = spell(rank, word_size);
        }
        Self { words: unique, word_size }
    }

    /// The word size `w`.
    pub fn word_size(&self) -> usize {
        self.word_size
    }

    /// Number of unique values `c` in the fitted corpus.
    pub fn unique_values(&self) -> usize {
        self.words.len()
    }

    /// The word for a value, if it was present at fit time.
    pub fn word(&self, value: i64) -> Option<&str> {
        self.words.get(&value).map(String::as_str)
    }

    /// Encodes a discrete signal as concatenated words.
    ///
    /// Values unseen at fit time (possible when transforming held-out
    /// data) are mapped to the nearest known value — the closest
    /// elevation the vocabulary can express.
    pub fn encode_signal(&self, signal: &[i64]) -> String {
        let mut out = String::with_capacity(signal.len() * self.word_size);
        for &v in signal {
            match self.words.get(&v) {
                Some(w) => out.push_str(w),
                None => {
                    if let Some(w) = self.nearest_word(v) {
                        out.push_str(w);
                    }
                    // An empty codebook encodes everything as "".
                }
            }
        }
        out
    }

    fn nearest_word(&self, v: i64) -> Option<&str> {
        let below = self.words.range(..=v).next_back();
        let above = self.words.range(v..).next();
        match (below, above) {
            (Some((bv, bw)), Some((av, aw))) => {
                if (v - bv) <= (av - v) {
                    Some(bw)
                } else {
                    Some(aw)
                }
            }
            (Some((_, w)), None) | (None, Some((_, w))) => Some(w),
            (None, None) => None,
        }
    }
}

/// `w = ⌈log_l c⌉`, minimum 1.
fn word_size_for(c: usize) -> usize {
    if c <= 1 {
        return 1;
    }
    let mut w = 0usize;
    let mut capacity = 1usize;
    while capacity < c {
        capacity = capacity.saturating_mul(ALPHABET_LEN);
        w += 1;
    }
    w
}

/// The base-`l` spelling of `rank` with exactly `width` letters.
fn spell(rank: usize, width: usize) -> String {
    let mut out = vec![b'a'; width];
    let mut r = rank;
    for slot in out.iter_mut().rev() {
        *slot = ALPHABET[r % ALPHABET_LEN];
        r /= ALPHABET_LEN;
    }
    debug_assert_eq!(r, 0, "rank exceeds alphabet capacity for width");
    String::from_utf8(out).expect("alphabet is ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_size_matches_log_formula() {
        assert_eq!(word_size_for(0), 1);
        assert_eq!(word_size_for(1), 1);
        assert_eq!(word_size_for(26), 1);
        assert_eq!(word_size_for(27), 2);
        assert_eq!(word_size_for(676), 2);
        assert_eq!(word_size_for(677), 3);
    }

    #[test]
    fn spelling_is_base26() {
        assert_eq!(spell(0, 2), "aa");
        assert_eq!(spell(1, 2), "ab");
        assert_eq!(spell(25, 2), "az");
        assert_eq!(spell(26, 2), "ba");
        assert_eq!(spell(675, 2), "zz");
    }

    #[test]
    fn all_words_are_unique_and_fixed_width() {
        let signal: Vec<i64> = (0..100).map(|i| i * 7 % 53).collect();
        let cb = ValueCodebook::fit([signal.as_slice()]);
        let mut seen = std::collections::HashSet::new();
        for v in signal {
            let w = cb.word(v).unwrap();
            assert_eq!(w.len(), cb.word_size());
            seen.insert(w.to_owned());
        }
        assert_eq!(seen.len(), cb.unique_values());
    }

    #[test]
    fn encoding_length_is_words_times_size() {
        let cb = ValueCodebook::fit([&[1i64, 2, 3][..]]);
        let text = cb.encode_signal(&[1, 2, 3, 3, 2, 1]);
        assert_eq!(text.len(), 6 * cb.word_size());
    }

    #[test]
    fn unseen_values_snap_to_nearest() {
        let cb = ValueCodebook::fit([&[0i64, 10][..]]);
        assert_eq!(cb.encode_signal(&[2]), cb.word(0).unwrap());
        assert_eq!(cb.encode_signal(&[9]), cb.word(10).unwrap());
        assert_eq!(cb.encode_signal(&[-5]), cb.word(0).unwrap());
        assert_eq!(cb.encode_signal(&[99]), cb.word(10).unwrap());
    }

    #[test]
    fn empty_codebook_encodes_empty() {
        let cb = ValueCodebook::fit(std::iter::empty::<&[i64]>());
        assert_eq!(cb.unique_values(), 0);
        assert_eq!(cb.encode_signal(&[1, 2, 3]), "");
    }

    #[test]
    fn large_corpus_gets_wider_words() {
        let signal: Vec<i64> = (0..1000).collect();
        let cb = ValueCodebook::fit([signal.as_slice()]);
        assert_eq!(cb.word_size(), 3); // 26^2 = 676 < 1000 <= 26^3
    }
}
