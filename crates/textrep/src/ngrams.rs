//! Vocabulary construction from word-based n-grams (paper Fig. 6).

use std::collections::HashSet;

/// A vocabulary of unique word-aligned k-grams, `k = 1..=max_n`.
///
/// Per the paper, "a window with size `W = w×n` is slided throughout the
/// corpus and each window content is appended to the vocabulary set ...
/// after traversing the corpus by n times with different window sizes" —
/// i.e. one pass per gram order, windows aligned to word boundaries and
/// slid one word at a time, deduplicated by the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    /// Sorted for determinism.
    entries: Vec<String>,
    word_size: usize,
    max_n: usize,
}

impl Vocabulary {
    /// Builds the vocabulary over an encoded corpus.
    ///
    /// Each element of `corpus` is one encoded signal (a line of the
    /// paper's corpus document). Windows never span lines.
    ///
    /// # Panics
    ///
    /// Panics if `word_size == 0` or `max_n == 0`.
    pub fn build(corpus: &[String], word_size: usize, max_n: usize) -> Self {
        assert!(word_size > 0, "word size must be positive");
        assert!(max_n > 0, "n-gram order must be positive");
        let mut set: HashSet<&str> = HashSet::new();
        for line in corpus {
            debug_assert_eq!(
                line.len() % word_size,
                0,
                "encoded lines are whole words"
            );
            let n_words = line.len() / word_size;
            for n in 1..=max_n {
                if n > n_words {
                    break;
                }
                let window = word_size * n;
                // Slide one word at a time.
                for start in (0..=(line.len() - window)).step_by(word_size) {
                    set.insert(&line[start..start + window]);
                }
            }
        }
        let mut entries: Vec<String> = set.into_iter().map(str::to_owned).collect();
        entries.sort_unstable();
        Self { entries, word_size, max_n }
    }

    /// The vocabulary entries, sorted.
    pub fn entries(&self) -> &[String] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The word size the vocabulary was built with.
    pub fn word_size(&self) -> usize {
        self.word_size
    }

    /// The maximum gram order.
    pub fn max_n(&self) -> usize {
        self.max_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(lines: &[&str]) -> Vec<String> {
        lines.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn bigram_example_from_figure_6() {
        // Word size 2, line "abcdef" = words [ab, cd, ef].
        // 1-grams: ab, cd, ef; 2-grams: abcd, cdef.
        let v = Vocabulary::build(&corpus(&["abcdef"]), 2, 2);
        assert_eq!(v.entries(), &["ab", "abcd", "cd", "cdef", "ef"]);
    }

    #[test]
    fn deduplicates_across_lines() {
        let v = Vocabulary::build(&corpus(&["abab", "abab"]), 2, 2);
        assert_eq!(v.entries(), &["ab", "abab"]);
    }

    #[test]
    fn windows_do_not_span_lines() {
        let v = Vocabulary::build(&corpus(&["ab", "cd"]), 2, 2);
        // No "abcd" since it would span two signals.
        assert_eq!(v.entries(), &["ab", "cd"]);
    }

    #[test]
    fn short_lines_contribute_short_grams_only() {
        let v = Vocabulary::build(&corpus(&["ab"]), 1, 4);
        assert_eq!(v.entries(), &["a", "ab", "b"]);
    }

    #[test]
    fn empty_corpus_is_empty() {
        let v = Vocabulary::build(&[], 2, 3);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn gram_count_for_uniform_line() {
        // Line of 10 distinct words, orders 1..=3:
        // 10 + 9 + 8 = 27 unique grams.
        let words: Vec<String> = (0..10).map(|i| format!("{i}")).collect();
        let line = words.concat();
        let v = Vocabulary::build(&[line], 1, 3);
        assert_eq!(v.len(), 27);
    }

    #[test]
    #[should_panic(expected = "word size")]
    fn rejects_zero_word_size() {
        Vocabulary::build(&[], 0, 2);
    }
}
