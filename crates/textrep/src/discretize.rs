//! Discretization of elevation signals (paper Fig. 5, step 1).

use serde::{Deserialize, Serialize};

/// The paper's two discretization functions.
///
/// Discrete values are represented as *scaled integers* so they can be
/// hashed and compared exactly: `Floor` maps `e → ⌊e⌋`, and
/// `FixedPrecision { decimals: 3 }` maps `e → ⌊e·10³⌋` (the paper's
/// `⌊e·10³⌋/10³`, kept scaled to avoid float keys).
///
/// Non-finite inputs (NaN/±∞ from corrupt recordings) are clamped to 0
/// rather than poisoning the codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Discretizer {
    /// `f(e) = ⌊e⌋` — used for the dense user-specific dataset.
    #[default]
    Floor,
    /// `f(e) = ⌊e·10^decimals⌋` — used for the sparse mined datasets,
    /// where "losing information is undesired" (paper uses 3 decimals).
    FixedPrecision {
        /// Number of preserved decimal digits.
        decimals: u32,
    },
}

impl Discretizer {
    /// The paper's mined-dataset discretizer (3 decimal digits).
    pub fn mined() -> Self {
        Discretizer::FixedPrecision { decimals: 3 }
    }

    /// Discretizes one value to its scaled-integer representative.
    pub fn apply_one(&self, e: f64) -> i64 {
        let e = if e.is_finite() { e } else { 0.0 };
        match self {
            Discretizer::Floor => e.floor() as i64,
            Discretizer::FixedPrecision { decimals } => {
                (e * 10f64.powi(*decimals as i32)).floor() as i64
            }
        }
    }

    /// Discretizes a whole signal.
    pub fn apply(&self, signal: &[f64]) -> Vec<i64> {
        signal.iter().map(|&e| self.apply_one(e)).collect()
    }
}



#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_matches_paper_definition() {
        let d = Discretizer::Floor;
        assert_eq!(d.apply(&[1.9, -0.1, 42.0]), vec![1, -1, 42]);
    }

    #[test]
    fn fixed_precision_keeps_three_decimals() {
        let d = Discretizer::mined();
        assert_eq!(d.apply_one(12.3456), 12_345);
        assert_eq!(d.apply_one(12.3454), 12_345);
        assert_eq!(d.apply_one(0.0001), 0);
    }

    #[test]
    fn floor_coarser_than_fixed_precision() {
        // Values that collide under Floor stay distinct at 3 decimals.
        let floor = Discretizer::Floor;
        let fine = Discretizer::mined();
        assert_eq!(floor.apply_one(5.001), floor.apply_one(5.999));
        assert_ne!(fine.apply_one(5.001), fine.apply_one(5.999));
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let d = Discretizer::Floor;
        assert_eq!(d.apply_one(f64::NAN), 0);
        assert_eq!(d.apply_one(f64::INFINITY), 0);
        assert_eq!(d.apply_one(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn discretization_is_monotone() {
        for d in [Discretizer::Floor, Discretizer::mined()] {
            let mut prev = i64::MIN;
            for i in 0..1000 {
                let v = d.apply_one(-3.0 + i as f64 * 0.013);
                assert!(v >= prev);
                prev = v;
            }
        }
    }
}
