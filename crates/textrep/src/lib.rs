//! Text-like representation of elevation profiles (paper §III-B1/III-C).
//!
//! The paper converts each elevation signal into text in four steps
//! (Fig. 5), then extracts bag-of-words features over an n-gram
//! vocabulary (Fig. 6):
//!
//! 1. **Discretization** ([`Discretizer`]): `⌊e⌋` for the dense
//!    user-specific signals, `⌊e·10³⌋/10³` for the sparse mined ones.
//! 2. **Word-size decision**: `w = ⌈log_l c⌉` where `l` is the alphabet
//!    length and `c` the number of unique discrete values.
//! 3. **Text encoding** ([`ValueCodebook`]): each unique value maps to a
//!    unique length-`w` string; a signal becomes the concatenation of
//!    its values' words.
//! 4. **Vocabulary creation** ([`Vocabulary`]): unique word-aligned
//!    k-grams for `k = 1..=n` over the whole corpus.
//!
//! Feature extraction ([`BowVectorizer`]) counts non-overlapping
//! occurrences of vocabulary entries in each encoded signal and
//! L1-normalizes the counts into occurrence probabilities, with
//! term-frequency-threshold feature selection for large corpora.
//!
//! # Examples
//!
//! ```
//! use textrep::TextPipeline;
//!
//! let signals: Vec<Vec<f64>> = vec![
//!     vec![10.2, 11.7, 12.1, 11.0],
//!     vec![10.9, 10.1, 12.8, 13.2],
//! ];
//! let pipeline = TextPipeline::fit(
//!     textrep::Discretizer::Floor,
//!     4, // n-gram order
//!     textrep::FeatureSelection::keep_all(),
//!     &signals,
//! );
//! let features = pipeline.transform_all(&signals);
//! assert_eq!(features.len(), 2);
//! let sum: f32 = features[0].iter().sum();
//! assert!((sum - 1.0).abs() < 1e-5); // probabilities
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bow;
mod discretize;
mod encode;
mod ngrams;

pub use bow::{BowVectorizer, FeatureSelection};
pub use discretize::Discretizer;
pub use encode::{ValueCodebook, ALPHABET, ALPHABET_LEN};
pub use ngrams::Vocabulary;

/// The full text-side preprocessing + feature-extraction pipeline.
///
/// Mirrors the paper's setup: the codebook and vocabulary are fit on
/// *all* signals regardless of labels ("we consider the corpus created
/// from all encoded signals regardless of labels").
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TextPipeline {
    discretizer: Discretizer,
    codebook: ValueCodebook,
    vectorizer: BowVectorizer,
}

impl TextPipeline {
    /// Fits the pipeline on a corpus of elevation signals.
    ///
    /// `max_n` is the n-gram order (the paper fixes n = 8); `selection`
    /// is the paper's term-frequency feature selection. The vectorizer
    /// is fit from non-overlapping tilings directly
    /// ([`BowVectorizer::fit_tiled`]), which yields the same features as
    /// the sliding-window vocabulary after selection but scales to the
    /// mined corpora.
    ///
    /// # Panics
    ///
    /// Panics if `max_n == 0`.
    pub fn fit(
        discretizer: Discretizer,
        max_n: usize,
        selection: FeatureSelection,
        signals: &[Vec<f64>],
    ) -> Self {
        assert!(max_n > 0, "n-gram order must be at least 1");
        let discrete: Vec<Vec<i64>> =
            signals.iter().map(|s| discretizer.apply(s)).collect();
        let codebook = ValueCodebook::fit(discrete.iter().map(|d| d.as_slice()));
        let corpus: Vec<String> =
            discrete.iter().map(|d| codebook.encode_signal(d)).collect();
        let vectorizer =
            BowVectorizer::fit_tiled(&corpus, codebook.word_size(), max_n, selection);
        Self { discretizer, codebook, vectorizer }
    }

    /// The fitted codebook.
    pub fn codebook(&self) -> &ValueCodebook {
        &self.codebook
    }

    /// The fitted vectorizer (vocabulary + feature selection).
    pub fn vectorizer(&self) -> &BowVectorizer {
        &self.vectorizer
    }

    /// Number of features produced per signal.
    pub fn n_features(&self) -> usize {
        self.vectorizer.n_features()
    }

    /// Encodes one elevation signal to its text form.
    pub fn encode(&self, signal: &[f64]) -> String {
        let d = self.discretizer.apply(signal);
        self.codebook.encode_signal(&d)
    }

    /// Transforms one elevation signal into its normalized BoW vector.
    pub fn transform(&self, signal: &[f64]) -> Vec<f32> {
        self.vectorizer.transform(&self.encode(signal))
    }

    /// Transforms one elevation signal into a sparse BoW vector without
    /// materializing the dense row (see
    /// [`BowVectorizer::transform_sparse`]).
    pub fn transform_sparse(&self, signal: &[f64]) -> sparsemat::SparseVec {
        self.vectorizer.transform_sparse(&self.encode(signal))
    }

    /// Transforms a batch of signals.
    pub fn transform_all(&self, signals: &[Vec<f64>]) -> Vec<Vec<f32>> {
        signals.iter().map(|s| self.transform(s)).collect()
    }

    /// Transforms a batch of signals into sparse rows.
    pub fn transform_all_sparse(&self, signals: &[Vec<f64>]) -> Vec<sparsemat::SparseVec> {
        signals.iter().map(|s| self.transform_sparse(s)).collect()
    }

    /// Transforms a batch of signals straight into a CSR feature matrix.
    pub fn transform_all_csr(&self, signals: &[Vec<f64>]) -> sparsemat::CsrMatrix {
        let rows = self.transform_all_sparse(signals);
        sparsemat::CsrMatrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_produces_probability_vectors() {
        let signals = vec![
            vec![1.0, 2.0, 3.0, 2.0, 1.0],
            vec![5.0, 5.5, 6.0, 6.5, 7.0],
            vec![1.2, 2.9, 3.3, 2.1, 1.7],
        ];
        let p = TextPipeline::fit(Discretizer::Floor, 3, FeatureSelection::keep_all(), &signals);
        for f in p.transform_all(&signals) {
            let sum: f32 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(f.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn similar_signals_have_similar_features() {
        let a = vec![10.0, 11.0, 12.0, 13.0, 12.0, 11.0, 10.0];
        let b = vec![10.4, 11.2, 12.3, 13.1, 12.2, 11.4, 10.2]; // same floors
        let c = vec![100.0, 150.0, 200.0, 150.0, 100.0, 50.0, 10.0];
        let p = TextPipeline::fit(Discretizer::Floor, 2, FeatureSelection::keep_all(), &[a.clone(), b.clone(), c.clone()]);
        let (fa, fb, fc) = (p.transform(&a), p.transform(&b), p.transform(&c));
        let dist = |x: &[f32], y: &[f32]| -> f32 {
            x.iter().zip(y).map(|(u, v)| (u - v).powi(2)).sum::<f32>().sqrt()
        };
        assert!(dist(&fa, &fb) < dist(&fa, &fc));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_ngram_order() {
        TextPipeline::fit(Discretizer::Floor, 0, FeatureSelection::keep_all(), &[vec![1.0]]);
    }
}
