//! The grid-mining pipeline of paper Fig. 4.
//!
//! Phase 1: define the boundary `B` of the city of interest. Phase 2:
//! divide it into grid regions `r_i` with boundaries `b_i`. Phase 3:
//! call `EXPLORESEGMENTS(b_i)` for each region and augment each returned
//! polyline path with its elevation profile from the elevation service.

use crate::segments::SegmentDatabase;
use geoprim::{polyline, BoundingBox, LatLon};
use serde::{Deserialize, Serialize};
use terrain::{ElevationModel, ElevationService};

/// One mined training segment: the polyline path plus the elevation
/// profile obtained from the elevation service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinedSegment {
    /// The decoded polyline path.
    pub path: Vec<LatLon>,
    /// Elevation profile sampled along the path.
    pub elevation: Vec<f64>,
    /// Index of the grid region `r_i` the segment was mined from.
    pub region_index: usize,
    /// The originating segment id in the database.
    pub segment_id: u64,
}

/// The miner: grid decomposition + explore + elevation augmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridMiner {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl GridMiner {
    /// Creates a miner.
    ///
    /// Elevation profiles are resolved **per polyline vertex** — the
    /// segment is a fixed user-created route, so every athlete who rides
    /// it shares the same coordinates and hence the same elevation
    /// values. This is what makes overlapped routes produce shared
    /// n-grams downstream (and is why the mined datasets are "sparse":
    /// tens of vertices, not a dense GPS recording).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        Self { rows, cols }
    }

    /// Runs the Fig. 4 pipeline over one boundary.
    ///
    /// Segments are delivered polyline-encoded by the explore API and
    /// decoded here, exactly as the paper's miner consumed them; the
    /// elevation profile is then fetched per path. Because each grid
    /// cell only returns *fully enclosed* segments, mined samples are
    /// disjoint across regions — "city-level dataset does not include
    /// overlapped samples".
    pub fn mine<M: ElevationModel>(
        &self,
        db: &SegmentDatabase,
        boundary: &BoundingBox,
        service: &ElevationService<M>,
    ) -> Vec<MinedSegment> {
        let mut out = Vec::new();
        for (region_index, cell) in boundary.grid(self.rows, self.cols).iter().enumerate() {
            for segment in db.explore_segments(cell) {
                // Wire-format fidelity: encode → decode loses sub-metre
                // precision, like the real mining pipeline.
                let path = polyline::decode(&segment.to_polyline())
                    .expect("self-encoded polylines always decode");
                let elevation = service.lookup(&path);
                out.push(MinedSegment {
                    path,
                    elevation,
                    region_index,
                    segment_id: segment.id,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::SegmentParams;
    use terrain::SyntheticTerrain;

    fn dc_box() -> BoundingBox {
        BoundingBox::new(LatLon::new(38.80, -77.12), LatLon::new(39.00, -76.91))
    }

    fn mine_dc(count: usize, rows: usize, cols: usize) -> Vec<MinedSegment> {
        let params = SegmentParams { count, length_m_range: (400.0, 1_500.0), max_popularity: 100 };
        let db = SegmentDatabase::generate(11, &dc_box(), &params);
        let service = ElevationService::new(SyntheticTerrain::new(11));
        GridMiner::new(rows, cols).mine(&db, &dc_box(), &service)
    }

    #[test]
    fn mining_yields_one_elevation_per_vertex() {
        let mined = mine_dc(200, 4, 4);
        assert!(!mined.is_empty());
        for m in &mined {
            assert_eq!(m.elevation.len(), m.path.len());
            assert!(m.path.len() >= 2);
        }
    }

    #[test]
    fn no_segment_is_mined_twice() {
        // Full encapsulation in disjoint cells => unique segment ids.
        let mined = mine_dc(400, 5, 5);
        let mut ids: Vec<u64> = mined.iter().map(|m| m.segment_id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn each_region_contributes_at_most_top_k() {
        let mined = mine_dc(1_000, 3, 3);
        for region in 0..9 {
            let n = mined.iter().filter(|m| m.region_index == region).count();
            assert!(n <= crate::segments::EXPLORE_TOP_K);
        }
    }

    #[test]
    fn finer_grids_mine_more() {
        let coarse = mine_dc(800, 2, 2).len();
        let fine = mine_dc(800, 6, 6).len();
        assert!(fine > coarse, "fine {fine} <= coarse {coarse}");
    }

    #[test]
    fn mining_is_deterministic() {
        let a = mine_dc(150, 3, 3);
        let b = mine_dc(150, 3, 3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "grid dimensions")]
    fn rejects_zero_grid() {
        GridMiner::new(0, 2);
    }
}
