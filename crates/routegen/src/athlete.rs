//! The athlete simulator backing the user-specific dataset (Table I).
//!
//! The paper's user-specific dataset comes from "a voluntary athlete who
//! records activities frequently". Its two statistically load-bearing
//! properties are:
//!
//! 1. **Dense sampling** — full GPS recordings, not sparse polylines, so
//!    the paper discretizes with a plain `floor`;
//! 2. **Route repetition** — "about 35% of the routes are overlapped"
//!    (average IoU of same-class tight rectangles), because real people
//!    leave from home, repeat favourite routes, and frequent the same
//!    parks. This repetition is exactly what makes the TM-1 attack so
//!    accurate.
//!
//! [`AthleteSimulator`] models those properties directly: each metro has
//! a small set of *anchors* (home/work/park, matching the paper's survey
//! where 90% of activities start at home/school/work) and a pool of
//! *favourite routes*; every generated activity either replays a
//! favourite with GPS jitter or wanders fresh from an anchor.

use crate::walk::{gaussian, generate_route, RouteKind, RouteParams};
use geoprim::LatLon;
use gpxfile::{Gpx, Track, TrackPoint, TrackSegment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use terrain::{CityId, ElevationModel, SyntheticTerrain};

/// A generated activity: the GPX recording plus its ground-truth metro.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// The full recording (trajectory + per-point elevation).
    pub gpx: Gpx,
    /// Ground-truth metro area (the class label source for Table I).
    pub metro: CityId,
}

impl Activity {
    /// The activity's elevation profile (the adversary's observation).
    pub fn elevation_profile(&self) -> Vec<f64> {
        self.gpx.elevation_profile()
    }

    /// The activity's location trajectory (hidden from the adversary).
    pub fn trajectory(&self) -> Vec<LatLon> {
        self.gpx.trajectory()
    }
}

/// Tunable behaviour of the [`AthleteSimulator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AthleteConfig {
    /// Probability an activity replays a favourite route.
    pub favorite_reuse_prob: f64,
    /// Number of favourite routes maintained per metro.
    pub favorites_per_metro: usize,
    /// Number of anchor points (home/work/park) per metro.
    pub anchors_per_metro: usize,
    /// Activity length range in metres.
    pub length_m_range: (f64, f64),
    /// Standard deviation of per-point GPS jitter when replaying, metres.
    pub replay_jitter_m: f64,
}

impl Default for AthleteConfig {
    fn default() -> Self {
        Self {
            favorite_reuse_prob: 0.8,
            favorites_per_metro: 2,
            anchors_per_metro: 3,
            length_m_range: (2_000.0, 8_000.0),
            replay_jitter_m: 4.0,
        }
    }
}

/// Habit-driven activity generator for one simulated athlete.
///
/// # Examples
///
/// ```
/// use routegen::AthleteSimulator;
/// use terrain::{CityId, SyntheticTerrain};
///
/// let mut sim = AthleteSimulator::new(SyntheticTerrain::new(1), 7);
/// let acts = sim.generate(CityId::Orlando, 5);
/// assert_eq!(acts.len(), 5);
/// assert!(acts[0].elevation_profile().len() > 100);
/// ```
#[derive(Debug)]
pub struct AthleteSimulator {
    terrain: SyntheticTerrain,
    rng: StdRng,
    config: AthleteConfig,
    /// Per-metro state, created lazily.
    metros: Vec<MetroState>,
}

#[derive(Debug)]
struct MetroState {
    metro: CityId,
    anchors: Vec<LatLon>,
    favorites: Vec<Vec<LatLon>>,
    /// The athlete's habitual training direction in this metro (toward
    /// the park, along the river); fresh routes scatter around it.
    preferred_heading: f64,
    /// The athlete's characteristic activity length in this metro.
    typical_length_m: f64,
}

impl AthleteSimulator {
    /// Creates a simulator with [`AthleteConfig::default`].
    pub fn new(terrain: SyntheticTerrain, seed: u64) -> Self {
        Self::with_config(terrain, seed, AthleteConfig::default())
    }

    /// Creates a simulator with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no anchors, no
    /// favourites, an empty or inverted length range, or a reuse
    /// probability outside `[0, 1]`).
    pub fn with_config(terrain: SyntheticTerrain, seed: u64, config: AthleteConfig) -> Self {
        assert!(config.anchors_per_metro > 0, "need at least one anchor");
        assert!(config.favorites_per_metro > 0, "need at least one favourite route");
        assert!(
            config.length_m_range.0 > 0.0 && config.length_m_range.1 >= config.length_m_range.0,
            "length range must be positive and ordered"
        );
        assert!(
            (0.0..=1.0).contains(&config.favorite_reuse_prob),
            "reuse probability must be in [0, 1]"
        );
        Self { terrain, rng: StdRng::seed_from_u64(seed), config, metros: Vec::new() }
    }

    /// Creates a simulator seeded from the `(master, city, athlete)`
    /// seed tree: `mix_seed(mix_seed(master, city_index), athlete_id)`.
    ///
    /// This is the constructor the population generator uses. The old
    /// pattern — one simulator seeded per *city*, its single RNG stream
    /// shared by every athlete generated in that city — made athlete
    /// `k+1` depend on how many draws athletes `0..k` consumed, so
    /// adding an athlete (or one more activity) perturbed everyone
    /// after it. Deriving the leaf seed per `(city, athlete)` makes
    /// each athlete's entire activity stream a pure function of the
    /// tree coordinates, independent of generation order, batch size,
    /// and thread count.
    pub fn for_athlete(terrain: SyntheticTerrain, master: u64, city_index: u64, athlete_id: u64) -> Self {
        Self::for_athlete_with_config(terrain, master, city_index, athlete_id, AthleteConfig::default())
    }

    /// [`for_athlete`](Self::for_athlete) with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see
    /// [`with_config`](Self::with_config)).
    pub fn for_athlete_with_config(
        terrain: SyntheticTerrain,
        master: u64,
        city_index: u64,
        athlete_id: u64,
        config: AthleteConfig,
    ) -> Self {
        let city_seed = exec::mix_seed(master, city_index);
        Self::with_config(terrain, exec::mix_seed(city_seed, athlete_id), config)
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &AthleteConfig {
        &self.config
    }

    /// Generates `n` activities in the given metro.
    pub fn generate(&mut self, metro: CityId, n: usize) -> Vec<Activity> {
        (0..n).map(|_| self.generate_one(metro)).collect()
    }

    /// Generates a single activity in the given metro.
    pub fn generate_one(&mut self, metro: CityId) -> Activity {
        let state_idx = self.metro_state(metro);
        let reuse = self.rng.gen_bool(self.config.favorite_reuse_prob);
        let path = if reuse {
            let idx = self.rng.gen_range(0..self.metros[state_idx].favorites.len());
            let favorite = self.metros[state_idx].favorites[idx].clone();
            self.replay(&favorite)
        } else {
            let anchor_idx = self.rng.gen_range(0..self.metros[state_idx].anchors.len());
            let start = self.metros[state_idx].anchors[anchor_idx];
            let preferred = self.metros[state_idx].preferred_heading;
            let typical = self.metros[state_idx].typical_length_m;
            self.fresh_route(metro, start, preferred, typical)
        };
        let elevations = self.terrain.elevations(&path);
        let points = path
            .iter()
            .zip(&elevations)
            .map(|(p, e)| TrackPoint::with_elevation(*p, *e))
            .collect();
        let gpx = Gpx {
            creator: "elevation-privacy athlete simulator".to_owned(),
            tracks: vec![Track {
                name: Some(format!("{} training", metro.abbrev())),
                segments: vec![TrackSegment { points }],
            }],
        };
        Activity { gpx, metro }
    }

    /// Index of (lazily created) per-metro state.
    fn metro_state(&mut self, metro: CityId) -> usize {
        if let Some(i) = self.metros.iter().position(|m| m.metro == metro) {
            return i;
        }
        let bbox = self.terrain.catalog().city(metro).bbox;
        // Anchors cluster in a neighbourhood-sized patch of the metro —
        // one athlete does not live everywhere in the city.
        let home = LatLon::new(
            self.rng.gen_range(
                bbox.south_west().lat + bbox.lat_span() * 0.3
                    ..bbox.south_west().lat + bbox.lat_span() * 0.7,
            ),
            self.rng.gen_range(
                bbox.south_west().lon + bbox.lon_span() * 0.3
                    ..bbox.south_west().lon + bbox.lon_span() * 0.7,
            ),
        );
        let mut anchors = vec![home];
        for _ in 1..self.config.anchors_per_metro {
            anchors.push(home.offset_m(
                gaussian(&mut self.rng) * 1_500.0,
                gaussian(&mut self.rng) * 1_500.0,
            ));
        }
        let preferred_heading = self.rng.gen_range(0.0..std::f64::consts::TAU);
        // Real athletes train near a characteristic distance; per-route
        // lengths vary ±20% around this metro-typical value.
        let typical_length_m =
            self.rng.gen_range(self.config.length_m_range.0..=self.config.length_m_range.1);
        self.metros.push(MetroState {
            metro,
            anchors,
            favorites: Vec::new(),
            preferred_heading,
            typical_length_m,
        });
        let idx = self.metros.len() - 1;
        // Favourite routes all start from anchors.
        for i in 0..self.config.favorites_per_metro {
            let start = self.metros[idx].anchors[i % self.metros[idx].anchors.len()];
            let route = self.fresh_route(metro, start, preferred_heading, typical_length_m);
            self.metros[idx].favorites.push(route);
        }
        idx
    }

    fn fresh_route(
        &mut self,
        metro: CityId,
        start: LatLon,
        preferred: f64,
        typical_length_m: f64,
    ) -> Vec<LatLon> {
        let bbox = self.terrain.catalog().city(metro).bbox;
        let length = typical_length_m * self.rng.gen_range(0.8..=1.2);
        let kind = match self.rng.gen_range(0..3) {
            0 => RouteKind::Loop,
            1 => RouteKind::OutAndBack,
            _ => RouteKind::Wander,
        };
        let heading = preferred + gaussian(&mut self.rng) * 0.35;
        let params = RouteParams::activity(length, kind).with_heading(heading);
        generate_route(&mut self.rng, start, &bbox, &params)
    }

    /// Replays a favourite route with GPS jitter and a random truncation
    /// (people cut runs short) — same trajectory, not an identical copy.
    fn replay(&mut self, favorite: &[LatLon]) -> Vec<LatLon> {
        let keep = self.rng.gen_range(0.85..=1.0);
        let n = ((favorite.len() as f64) * keep).round().max(2.0) as usize;
        favorite[..n.min(favorite.len())]
            .iter()
            .map(|p| {
                p.offset_m(
                    gaussian(&mut self.rng) * self.config.replay_jitter_m,
                    gaussian(&mut self.rng) * self.config.replay_jitter_m,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoprim::{average_pairwise_iou, BoundingBox};

    #[test]
    fn activities_stay_in_metro() {
        let mut sim = AthleteSimulator::new(SyntheticTerrain::new(3), 10);
        let acts = sim.generate(CityId::WashingtonDc, 10);
        let bbox = SyntheticTerrain::new(3)
            .catalog()
            .city(CityId::WashingtonDc)
            .bbox
            .expanded(0.05);
        for a in &acts {
            let inside = a.trajectory().iter().filter(|p| bbox.contains(**p)).count();
            assert!(inside * 10 >= a.trajectory().len() * 9, "route mostly escaped metro");
        }
    }

    #[test]
    fn activities_are_dense_recordings() {
        let mut sim = AthleteSimulator::new(SyntheticTerrain::new(3), 11);
        let act = sim.generate_one(CityId::Orlando);
        assert!(act.gpx.point_count() >= 140, "got {}", act.gpx.point_count());
        assert_eq!(act.gpx.point_count(), act.elevation_profile().len());
    }

    #[test]
    fn overlap_ratio_is_paper_like() {
        // The paper reports ~35% average same-class IoU; accept a band.
        let mut sim = AthleteSimulator::new(SyntheticTerrain::new(3), 12);
        let acts = sim.generate(CityId::WashingtonDc, 60);
        let rects: Vec<BoundingBox> = acts
            .iter()
            .map(|a| BoundingBox::tight(a.trajectory()).unwrap())
            .collect();
        let iou = average_pairwise_iou(&rects);
        assert!(
            (0.22..=0.52).contains(&iou),
            "average overlap {iou} outside the plausible band"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let a = AthleteSimulator::new(SyntheticTerrain::new(5), 77).generate_one(CityId::Miami);
        let b = AthleteSimulator::new(SyntheticTerrain::new(5), 77).generate_one(CityId::Miami);
        assert_eq!(a, b);
    }

    #[test]
    fn different_metros_have_different_elevation_bands() {
        let mut sim = AthleteSimulator::new(SyntheticTerrain::new(3), 13);
        let orlando = sim.generate_one(CityId::Orlando);
        let springs_sim = sim.generate_one(CityId::ColoradoSprings);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&orlando.elevation_profile()) < 100.0);
        assert!(mean(&springs_sim.elevation_profile()) > 1_200.0);
    }

    #[test]
    #[should_panic(expected = "reuse probability")]
    fn rejects_bad_config() {
        let cfg = AthleteConfig { favorite_reuse_prob: 1.5, ..Default::default() };
        AthleteSimulator::with_config(SyntheticTerrain::new(1), 1, cfg);
    }
}
