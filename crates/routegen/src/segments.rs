//! The training-segment database and `EXPLORESEGMENTS()` simulator.
//!
//! The paper mines "publicly available training route segments in a
//! popular fitness tracking application using its `EXPLORESEGMENTS()`
//! functionality", which "returns only the top-10 segments encapsulated
//! by a given boundary". [`SegmentDatabase`] is the synthetic stand-in:
//! a per-city population of user-created segments with popularity
//! scores, and [`SegmentDatabase::explore_segments`] reproduces the
//! query semantics (full encapsulation + top-10 by popularity) whose
//! truncation biases shape the mined datasets.

use crate::walk::{generate_route, RouteKind, RouteParams};
use geoprim::{polyline, BoundingBox, LatLon};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// `EXPLORESEGMENTS()` returns at most this many segments per query.
pub const EXPLORE_TOP_K: usize = 10;

/// A user-created training route segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Stable identifier within its database.
    pub id: u64,
    /// The segment's vertices (sparse, runner-segment granularity).
    pub path: Vec<LatLon>,
    /// Popularity score (athlete completion count); the explore query
    /// ranks by this.
    pub popularity: u32,
    /// The segment's tight bounding rectangle (cached).
    pub bbox: BoundingBox,
}

impl Segment {
    /// The segment encoded as a Google polyline, as the mining API
    /// would deliver it.
    pub fn to_polyline(&self) -> String {
        polyline::encode(&self.path)
    }
}

/// Parameters for populating a [`SegmentDatabase`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentParams {
    /// Number of segments to create.
    pub count: usize,
    /// Segment length range in metres.
    pub length_m_range: (f64, f64),
    /// Maximum popularity score (scores are uniform in `1..=max`).
    pub max_popularity: u32,
}

impl Default for SegmentParams {
    fn default() -> Self {
        Self { count: 500, length_m_range: (400.0, 3_000.0), max_popularity: 5_000 }
    }
}

/// A population of training segments within one boundary.
///
/// # Examples
///
/// ```
/// use geoprim::{BoundingBox, LatLon};
/// use routegen::{SegmentDatabase, SegmentParams, EXPLORE_TOP_K};
///
/// let bbox = BoundingBox::new(LatLon::new(38.8, -77.1), LatLon::new(39.0, -76.9));
/// let db = SegmentDatabase::generate(42, &bbox, &SegmentParams::default());
/// let hits = db.explore_segments(&bbox);
/// assert!(hits.len() <= EXPLORE_TOP_K);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentDatabase {
    segments: Vec<Segment>,
}

impl SegmentDatabase {
    /// Populates a database with `params.count` segments whose start
    /// points are uniform in `boundary`.
    pub fn generate(seed: u64, boundary: &BoundingBox, params: &SegmentParams) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut segments = Vec::with_capacity(params.count);
        for id in 0..params.count {
            let start = LatLon::new(
                rng.gen_range(boundary.south_west().lat..=boundary.north_east().lat),
                rng.gen_range(boundary.south_west().lon..=boundary.north_east().lon),
            );
            let length = rng.gen_range(params.length_m_range.0..=params.length_m_range.1);
            let kind = if rng.gen_bool(0.5) { RouteKind::Wander } else { RouteKind::Loop };
            let route_params = RouteParams::segment(length, kind);
            let path = generate_route(&mut rng, start, boundary, &route_params);
            let bbox = BoundingBox::tight(path.iter().copied())
                .expect("generated routes are non-empty");
            segments.push(Segment {
                id: id as u64,
                path,
                popularity: rng.gen_range(1..=params.max_popularity),
                bbox,
            });
        }
        Self { segments }
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The `EXPLORESEGMENTS()` query: the top-[`EXPLORE_TOP_K`] segments
    /// *fully encapsulated* by `bounds`, by descending popularity.
    ///
    /// Matching the real API (and the paper's observation that "a
    /// segment route that is included by more than one neighbour region
    /// (is) not considered"), a segment straddling the boundary is never
    /// returned.
    pub fn explore_segments(&self, bounds: &BoundingBox) -> Vec<&Segment> {
        let mut hits: Vec<&Segment> =
            self.segments.iter().filter(|s| bounds.encloses(&s.bbox)).collect();
        hits.sort_by(|a, b| b.popularity.cmp(&a.popularity).then(a.id.cmp(&b.id)));
        hits.truncate(EXPLORE_TOP_K);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_box() -> BoundingBox {
        BoundingBox::new(LatLon::new(38.80, -77.12), LatLon::new(39.00, -76.91))
    }

    #[test]
    fn generate_is_deterministic() {
        let p = SegmentParams { count: 20, ..Default::default() };
        let a = SegmentDatabase::generate(7, &dc_box(), &p);
        let b = SegmentDatabase::generate(7, &dc_box(), &p);
        assert_eq!(a.segments(), b.segments());
    }

    #[test]
    fn explore_returns_at_most_top_k() {
        let p = SegmentParams { count: 300, ..Default::default() };
        let db = SegmentDatabase::generate(1, &dc_box(), &p);
        let hits = db.explore_segments(&dc_box());
        assert_eq!(hits.len(), EXPLORE_TOP_K);
    }

    #[test]
    fn explore_ranks_by_popularity() {
        let p = SegmentParams { count: 300, ..Default::default() };
        let db = SegmentDatabase::generate(2, &dc_box(), &p);
        let hits = db.explore_segments(&dc_box());
        for w in hits.windows(2) {
            assert!(w[0].popularity >= w[1].popularity);
        }
    }

    #[test]
    fn explore_requires_full_encapsulation() {
        let p = SegmentParams { count: 200, ..Default::default() };
        let db = SegmentDatabase::generate(3, &dc_box(), &p);
        // Query a quarter of the box: every hit's bbox must be enclosed.
        let cells = dc_box().grid(2, 2);
        for cell in &cells {
            for hit in db.explore_segments(cell) {
                assert!(cell.encloses(&hit.bbox));
            }
        }
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let p = SegmentParams { count: 50, ..Default::default() };
        let db = SegmentDatabase::generate(4, &dc_box(), &p);
        let far = BoundingBox::new(LatLon::new(0.0, 0.0), LatLon::new(1.0, 1.0));
        assert!(db.explore_segments(&far).is_empty());
    }

    #[test]
    fn polyline_roundtrips() {
        let p = SegmentParams { count: 5, ..Default::default() };
        let db = SegmentDatabase::generate(5, &dc_box(), &p);
        for s in db.segments() {
            let decoded = geoprim::polyline::decode(&s.to_polyline()).unwrap();
            assert_eq!(decoded.len(), s.path.len());
        }
    }

    #[test]
    fn segment_lengths_respect_range() {
        let p = SegmentParams {
            count: 30,
            length_m_range: (500.0, 1_000.0),
            max_popularity: 10,
        };
        let db = SegmentDatabase::generate(6, &dc_box(), &p);
        for s in db.segments() {
            let len: f64 = s.path.windows(2).map(|w| w[0].haversine_m(w[1])).sum();
            assert!(len > 300.0 && len < 1_600.0, "length {len}");
        }
    }
}
