//! Streaming population generator: millions of synthetic athletes
//! under a fixed seed tree.
//!
//! The paper's datasets are paper-scale (hundreds of tracks). The
//! scale experiments need candidate pools up to 10⁶ athletes, which
//! rules out materializing the corpus: the population is generated
//! *shard by shard*, and every shard is a pure function of
//! `(config, shard_index)` — the same discipline `faultsim`'s fault
//! plans use for per-unit decisions.
//!
//! **The seed tree.** Every per-athlete decision hangs off
//! [`exec::mix_seed`] chains rooted at the population seed:
//!
//! ```text
//! seed ─┬─ mix(seed ^ CITY_DOMAIN,    id) → home-city pick
//!       ├─ mix(seed ^ CADENCE_DOMAIN, id) → weekly cadence
//!       └─ mix(mix(seed, city_index), id) → the athlete's whole
//!                                           activity RNG stream
//! ```
//!
//! Because every leaf is addressed by `(city, athlete)` coordinates —
//! never by position in a shared sequential stream — the generator is:
//!
//! - **prefix-stable**: the population with `n` athletes is a strict
//!   prefix of the one with `2n`, so scaling sweeps nest;
//! - **order-free**: shards regenerate bit-identically in any order,
//!   at any thread count (pinned by the `corpus.shard` golden stage
//!   and the shard-regeneration metamorphic invariant);
//! - **random-access**: any athlete's stream extends on demand (the
//!   sweeps draw *probe* activities this way) without touching
//!   anyone else's.

use crate::athlete::{Activity, AthleteConfig, AthleteSimulator};
use terrain::{CityId, SyntheticTerrain};

/// Domain separator for the home-city pick.
const CITY_DOMAIN: u64 = 0xC17E_5EED;
/// Domain separator for the weekly-cadence pick.
const CADENCE_DOMAIN: u64 = 0xCADE_2CE5;

/// Configuration of a synthetic athlete population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Total number of athletes.
    pub athletes: usize,
    /// Athletes per shard (the unit of regeneration and of parallelism).
    pub shard_size: usize,
    /// Root of the seed tree (also seeds the shared terrain).
    pub seed: u64,
    /// Candidate home metros; athletes are assigned uniformly.
    pub cities: Vec<CityId>,
    /// Per-athlete habit-model configuration.
    pub athlete: AthleteConfig,
    /// Weekly training cadence is drawn from `1..=max_weekly_cadence`;
    /// an athlete contributes that many history activities to the
    /// corpus.
    pub max_weekly_cadence: usize,
}

/// The habit-model knobs the population generator uses by default:
/// leaner than [`AthleteConfig::default`] (fewer anchors, shorter
/// routes) so million-athlete corpora stay affordable, while keeping
/// the favourite-route reuse that makes re-identification work.
pub fn scale_athlete_config() -> AthleteConfig {
    AthleteConfig {
        favorite_reuse_prob: 0.7,
        favorites_per_metro: 2,
        anchors_per_metro: 2,
        length_m_range: (1_200.0, 4_000.0),
        replay_jitter_m: 4.0,
    }
}

impl PopulationConfig {
    /// A population of `athletes` over the paper's ten city-level
    /// metros with [`scale_athlete_config`] habits.
    pub fn new(athletes: usize, seed: u64) -> Self {
        Self {
            athletes,
            shard_size: 1024,
            seed,
            cities: CityId::CITY_LEVEL.to_vec(),
            athlete: scale_athlete_config(),
            max_weekly_cadence: 3,
        }
    }

    /// The shared synthetic terrain every athlete trains on.
    pub fn terrain(&self) -> SyntheticTerrain {
        SyntheticTerrain::new(self.seed)
    }

    /// Number of shards (`⌈athletes / shard_size⌉`).
    pub fn n_shards(&self) -> usize {
        self.athletes.div_ceil(self.shard_size.max(1))
    }

    /// Global athlete-id range of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n_shards()`.
    pub fn shard_range(&self, index: usize) -> std::ops::Range<u64> {
        assert!(index < self.n_shards(), "shard {index} of {}", self.n_shards());
        let start = index * self.shard_size;
        let end = (start + self.shard_size).min(self.athletes);
        start as u64..end as u64
    }

    /// The habit model of athlete `id` — a pure function of
    /// `(seed, id)`, never of generation history.
    ///
    /// # Panics
    ///
    /// Panics if the config has no cities or a zero cadence bound.
    pub fn habits(&self, id: u64) -> AthleteHabits {
        assert!(!self.cities.is_empty(), "population needs at least one city");
        assert!(self.max_weekly_cadence > 0, "cadence bound must be positive");
        let city_index = (exec::mix_seed(self.seed ^ CITY_DOMAIN, id) % self.cities.len() as u64)
            as usize;
        let weekly_cadence =
            1 + (exec::mix_seed(self.seed ^ CADENCE_DOMAIN, id) % self.max_weekly_cadence as u64)
                as usize;
        AthleteHabits { id, city: self.cities[city_index], city_index, weekly_cadence }
    }

    /// The first `n` activities of athlete `id`'s stream.
    ///
    /// `n = habits.weekly_cadence` reproduces exactly the history
    /// activities [`generate_shard`](Self::generate_shard) emits;
    /// larger `n` extends the same stream (the sweeps use activity
    /// index `weekly_cadence` as the held-out probe).
    pub fn athlete_activities(&self, terrain: &SyntheticTerrain, id: u64, n: usize) -> Vec<Activity> {
        let habits = self.habits(id);
        let mut sim = AthleteSimulator::for_athlete_with_config(
            terrain.clone(),
            self.seed,
            habits.city_index as u64,
            id,
            self.athlete,
        );
        sim.generate(habits.city, n)
    }

    /// Generates one athlete: habits plus their history activities.
    pub fn generate_athlete(&self, terrain: &SyntheticTerrain, id: u64) -> AthleteRecord {
        let habits = self.habits(id);
        let activities = self.athlete_activities(terrain, id, habits.weekly_cadence);
        AthleteRecord { habits, activities }
    }

    /// Generates shard `index` — a pure function of
    /// `(config, index)`, so shards regenerate independently,
    /// bit-identically, in any order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n_shards()`.
    pub fn generate_shard(&self, terrain: &SyntheticTerrain, index: usize) -> PopulationShard {
        let athletes =
            self.shard_range(index).map(|id| self.generate_athlete(terrain, id)).collect();
        PopulationShard { index, athletes }
    }

    /// FNV-1a-64 fingerprint of the generation-relevant configuration;
    /// feature stores record it so a stale store is never silently
    /// reused for a different population.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        f.u64(self.athletes as u64).u64(self.shard_size as u64).u64(self.seed);
        f.u64(self.cities.len() as u64);
        for c in &self.cities {
            f.str(c.abbrev());
        }
        f.u64(self.max_weekly_cadence as u64);
        f.f64(self.athlete.favorite_reuse_prob)
            .u64(self.athlete.favorites_per_metro as u64)
            .u64(self.athlete.anchors_per_metro as u64)
            .f64(self.athlete.length_m_range.0)
            .f64(self.athlete.length_m_range.1)
            .f64(self.athlete.replay_jitter_m);
        f.finish()
    }

    /// Like [`fingerprint`](Self::fingerprint) but excluding the
    /// athlete count: two populations that differ only in size share a
    /// prefix fingerprint, because the seed tree makes the smaller one
    /// a bit-identical prefix of the larger. Incremental shard appends
    /// key on this — growing a store must not invalidate it.
    pub fn prefix_fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        f.u64(self.shard_size as u64).u64(self.seed);
        f.u64(self.cities.len() as u64);
        for c in &self.cities {
            f.str(c.abbrev());
        }
        f.u64(self.max_weekly_cadence as u64);
        f.f64(self.athlete.favorite_reuse_prob)
            .u64(self.athlete.favorites_per_metro as u64)
            .u64(self.athlete.anchors_per_metro as u64)
            .f64(self.athlete.length_m_range.0)
            .f64(self.athlete.length_m_range.1)
            .f64(self.athlete.replay_jitter_m);
        f.finish()
    }
}

/// The per-athlete habit model: who they are, where they live, how
/// often they train.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AthleteHabits {
    /// Global athlete id (position in the population).
    pub id: u64,
    /// Home metro.
    pub city: CityId,
    /// Index of the home metro in [`PopulationConfig::cities`].
    pub city_index: usize,
    /// History activities this athlete contributes to the corpus.
    pub weekly_cadence: usize,
}

/// One generated athlete: habits plus history activities.
#[derive(Debug, Clone, PartialEq)]
pub struct AthleteRecord {
    /// The habit model.
    pub habits: AthleteHabits,
    /// The athlete's `weekly_cadence` history activities.
    pub activities: Vec<Activity>,
}

/// One generated population shard.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationShard {
    /// Shard index.
    pub index: usize,
    /// The shard's athletes, in ascending global-id order.
    pub athletes: Vec<AthleteRecord>,
}

impl PopulationShard {
    /// Total activities in the shard.
    pub fn tracks(&self) -> usize {
        self.athletes.iter().map(|a| a.activities.len()).sum()
    }

    /// Total trajectory points in the shard.
    pub fn points(&self) -> usize {
        self.athletes
            .iter()
            .flat_map(|a| &a.activities)
            .map(|act| act.gpx.point_count())
            .sum()
    }

    /// Canonical FNV-1a-64 content fingerprint: athlete ids, habit
    /// models, trajectories and elevation profiles by IEEE-754 bit
    /// pattern. Two shards fingerprint equal only if they are
    /// bit-identical — this is what the order/thread-count invariance
    /// checks compare, and what the `corpus.shard` golden pins.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        f.u64(self.index as u64).u64(self.athletes.len() as u64);
        for a in &self.athletes {
            f.u64(a.habits.id).str(a.habits.city.abbrev()).u64(a.habits.weekly_cadence as u64);
            f.u64(a.activities.len() as u64);
            for act in &a.activities {
                let traj = act.trajectory();
                f.u64(traj.len() as u64);
                for p in &traj {
                    f.f64(p.lat).f64(p.lon);
                }
                for e in act.elevation_profile() {
                    f.f64(e);
                }
            }
        }
        f.finish()
    }
}

/// Minimal incremental FNV-1a-64 over length-prefixed fields (floats
/// by bit pattern). Local on purpose: `routegen` sits below the
/// conformance crate and must not depend on it.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }
    fn u64(&mut self, v: u64) -> &mut Self {
        self.raw(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }
    fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).raw(s.as_bytes())
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(athletes: usize) -> PopulationConfig {
        PopulationConfig { shard_size: 4, ..PopulationConfig::new(athletes, 99) }
    }

    #[test]
    fn shard_ranges_tile_the_population() {
        let cfg = tiny(10);
        assert_eq!(cfg.n_shards(), 3);
        assert_eq!(cfg.shard_range(0), 0..4);
        assert_eq!(cfg.shard_range(1), 4..8);
        assert_eq!(cfg.shard_range(2), 8..10);
    }

    #[test]
    fn shards_regenerate_bit_identically() {
        let cfg = tiny(8);
        let terrain = cfg.terrain();
        let a = cfg.generate_shard(&terrain, 1);
        let b = cfg.generate_shard(&terrain, 1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn habits_cover_cities_and_cadences() {
        let cfg = PopulationConfig::new(200, 5);
        let mut cities = std::collections::BTreeSet::new();
        let mut cadences = std::collections::BTreeSet::new();
        for id in 0..200 {
            let h = cfg.habits(id);
            cities.insert(h.city.abbrev());
            cadences.insert(h.weekly_cadence);
            assert!((1..=cfg.max_weekly_cadence).contains(&h.weekly_cadence));
        }
        assert!(cities.len() >= 8, "only {} cities drawn", cities.len());
        assert_eq!(cadences.len(), cfg.max_weekly_cadence);
    }

    #[test]
    fn activity_stream_extends_as_a_prefix() {
        let cfg = tiny(4);
        let terrain = cfg.terrain();
        let short = cfg.athlete_activities(&terrain, 2, 2);
        let long = cfg.athlete_activities(&terrain, 2, 4);
        assert_eq!(long.len(), 4);
        assert_eq!(&long[..2], &short[..], "probe draws must extend, not re-deal, the stream");
    }

    #[test]
    fn athletes_train_in_their_home_city() {
        let cfg = tiny(6);
        let terrain = cfg.terrain();
        for id in 0..6 {
            let rec = cfg.generate_athlete(&terrain, id);
            assert_eq!(rec.activities.len(), rec.habits.weekly_cadence);
            for act in &rec.activities {
                assert_eq!(act.metro, rec.habits.city);
            }
        }
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let cfg = tiny(5);
        let terrain = cfg.terrain();
        let shard = cfg.generate_shard(&terrain, 0);
        let other = PopulationConfig { seed: 100, ..tiny(5) };
        let shard_other = other.generate_shard(&other.terrain(), 0);
        assert_ne!(shard.fingerprint(), shard_other.fingerprint());
        assert_ne!(cfg.fingerprint(), other.fingerprint());
    }

    #[test]
    fn prefix_fingerprint_ignores_size_only() {
        let small = tiny(5);
        let grown = PopulationConfig { athletes: 10, ..tiny(5) };
        assert_eq!(small.prefix_fingerprint(), grown.prefix_fingerprint());
        assert_ne!(small.fingerprint(), grown.fingerprint());
        let reseeded = PopulationConfig { seed: 100, ..tiny(5) };
        assert_ne!(small.prefix_fingerprint(), reseeded.prefix_fingerprint());
    }
}
