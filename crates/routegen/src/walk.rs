//! Momentum random-walk route generation.

use geoprim::{BoundingBox, LatLon, LocalProjection};
use rand::Rng;

/// Samples a standard-normal value via Box–Muller.
///
/// `rand` (sanctioned) ships only uniform distributions; the polar
/// Box–Muller transform supplies the Gaussian turning noise routes need.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The overall shape of a generated route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// A free wandering walk.
    Wander,
    /// A route biased to return to its start (closed training loop).
    Loop,
    /// Goes out, turns around, and retraces itself with jitter.
    OutAndBack,
}

/// Parameters for [`generate_route`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteParams {
    /// Distance between consecutive points, metres.
    pub step_m: f64,
    /// Standard deviation of per-step heading change, radians.
    pub turn_sigma_rad: f64,
    /// Total route length, metres.
    pub length_m: f64,
    /// Route shape.
    pub kind: RouteKind,
    /// Initial heading in radians; `None` draws uniformly. Habitual
    /// athletes train along preferred corridors, which is one source of
    /// the user-specific dataset's route overlap.
    pub initial_heading_rad: Option<f64>,
}

impl RouteParams {
    /// Typical runner's training segment: sparse vertices, ~20 m steps.
    pub fn segment(length_m: f64, kind: RouteKind) -> Self {
        Self { step_m: 20.0, turn_sigma_rad: 0.25, length_m, kind, initial_heading_rad: None }
    }

    /// Dense recorded activity: GPS fix every ~10 m.
    pub fn activity(length_m: f64, kind: RouteKind) -> Self {
        Self { step_m: 10.0, turn_sigma_rad: 0.18, length_m, kind, initial_heading_rad: None }
    }

    /// Sets the initial heading (builder-style).
    pub fn with_heading(mut self, heading_rad: f64) -> Self {
        self.initial_heading_rad = Some(heading_rad);
        self
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint (non-positive step or
    /// length, non-finite or negative turning noise).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.step_m.is_finite() && self.step_m > 0.0) {
            return Err(format!("step_m must be positive, got {}", self.step_m));
        }
        if !(self.length_m.is_finite() && self.length_m >= self.step_m) {
            return Err(format!("length_m must be >= step_m, got {}", self.length_m));
        }
        if !(self.turn_sigma_rad.is_finite() && self.turn_sigma_rad >= 0.0) {
            return Err(format!("turn_sigma_rad must be >= 0, got {}", self.turn_sigma_rad));
        }
        Ok(())
    }
}

/// Generates a route of `params.length_m / params.step_m` steps starting
/// at `start`, soft-bounded by `bounds` (the walk is steered back toward
/// the box centre when it strays outside).
///
/// # Panics
///
/// Panics if `params` fails [`RouteParams::validate`] — generator
/// parameters are programmer input, not untrusted data.
pub fn generate_route<R: Rng + ?Sized>(
    rng: &mut R,
    start: LatLon,
    bounds: &BoundingBox,
    params: &RouteParams,
) -> Vec<LatLon> {
    if let Err(e) = params.validate() {
        panic!("invalid route parameters: {e}");
    }
    let proj = LocalProjection::new(start);
    let n_steps = (params.length_m / params.step_m).round().max(1.0) as usize;
    match params.kind {
        RouteKind::Wander => wander(rng, &proj, bounds, params, n_steps, None),
        RouteKind::Loop => wander(rng, &proj, bounds, params, n_steps, Some((0.0, 0.0))),
        RouteKind::OutAndBack => {
            let half = wander(rng, &proj, bounds, params, n_steps / 2 + 1, None);
            let mut route = half.clone();
            // Retrace with ~2 m of GPS jitter.
            for p in half.iter().rev().skip(1) {
                let (x, y) = proj.to_meters(*p);
                route.push(proj.to_latlon(x + gaussian(rng) * 2.0, y + gaussian(rng) * 2.0));
            }
            route
        }
    }
}

/// Core walk in local metre space. When `return_to` is set, the second
/// half of the walk blends in a pull toward that point, closing a loop.
fn wander<R: Rng + ?Sized>(
    rng: &mut R,
    proj: &LocalProjection,
    bounds: &BoundingBox,
    params: &RouteParams,
    n_steps: usize,
    return_to: Option<(f64, f64)>,
) -> Vec<LatLon> {
    let mut heading: f64 = params
        .initial_heading_rad
        .unwrap_or_else(|| rng.gen_range(0.0..std::f64::consts::TAU));
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut route = Vec::with_capacity(n_steps + 1);
    route.push(proj.to_latlon(x, y));
    for i in 0..n_steps {
        heading += gaussian(rng) * params.turn_sigma_rad;

        // Soft boundary: steer toward the bbox centre when outside.
        let here = proj.to_latlon(x, y);
        if !bounds.contains(here) {
            let (cx, cy) = proj.to_meters(bounds.center());
            let target = (cy - y).atan2(cx - x);
            heading = blend_heading(heading, target, 0.5);
        }
        // Loop closure: pull toward the return point in the second half.
        if let Some((rx, ry)) = return_to {
            let progress = i as f64 / n_steps as f64;
            if progress > 0.5 {
                let remaining = ((n_steps - i) as f64) * params.step_m;
                let dist_home = ((rx - x).powi(2) + (ry - y).powi(2)).sqrt();
                let urgency = (dist_home / remaining.max(1.0)).min(1.0);
                let target = (ry - y).atan2(rx - x);
                heading = blend_heading(heading, target, urgency * 0.8);
            }
        }
        x += heading.cos() * params.step_m;
        y += heading.sin() * params.step_m;
        route.push(proj.to_latlon(x, y));
    }
    route
}

/// Circular interpolation between two headings.
fn blend_heading(from: f64, to: f64, t: f64) -> f64 {
    let mut diff = to - from;
    while diff > std::f64::consts::PI {
        diff -= std::f64::consts::TAU;
    }
    while diff < -std::f64::consts::PI {
        diff += std::f64::consts::TAU;
    }
    from + diff * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_bounds() -> BoundingBox {
        BoundingBox::new(LatLon::new(38.7, -77.3), LatLon::new(39.1, -76.8))
    }

    #[test]
    fn route_has_expected_step_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = RouteParams::activity(3000.0, RouteKind::Wander);
        let route = generate_route(&mut rng, LatLon::new(38.9, -77.0), &test_bounds(), &p);
        assert_eq!(route.len(), 301);
    }

    #[test]
    fn consecutive_points_are_step_m_apart() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = RouteParams::segment(2000.0, RouteKind::Wander);
        let route = generate_route(&mut rng, LatLon::new(38.9, -77.0), &test_bounds(), &p);
        for w in route.windows(2) {
            let d = w[0].haversine_m(w[1]);
            assert!((d - 20.0).abs() < 1.0, "step of {d} m");
        }
    }

    #[test]
    fn loop_returns_near_start() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = RouteParams::activity(4000.0, RouteKind::Loop);
        for _ in 0..5 {
            let start = LatLon::new(38.9, -77.0);
            let route = generate_route(&mut rng, start, &test_bounds(), &p);
            let end = *route.last().unwrap();
            assert!(start.haversine_m(end) < 400.0, "loop ended {} m away", start.haversine_m(end));
        }
    }

    #[test]
    fn out_and_back_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = RouteParams::activity(2000.0, RouteKind::OutAndBack);
        let start = LatLon::new(38.9, -77.0);
        let route = generate_route(&mut rng, start, &test_bounds(), &p);
        let end = *route.last().unwrap();
        assert!(start.haversine_m(end) < 30.0);
        // The turnaround point is roughly half the length out.
        let far = route
            .iter()
            .map(|q| start.haversine_m(*q))
            .fold(0.0f64, f64::max);
        assert!(far > 300.0, "never went far: {far} m");
    }

    #[test]
    fn walk_stays_near_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        // Tiny box, long walk: soft bounds must keep it within ~1 km.
        let bounds =
            BoundingBox::new(LatLon::new(38.89, -77.01), LatLon::new(38.91, -76.99));
        let p = RouteParams::activity(10_000.0, RouteKind::Wander);
        let route = generate_route(&mut rng, LatLon::new(38.90, -77.0), &bounds, &p);
        let c = bounds.center();
        for q in route {
            assert!(c.haversine_m(q) < 4_000.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = RouteParams::activity(1000.0, RouteKind::Loop);
        let a = generate_route(
            &mut StdRng::seed_from_u64(9),
            LatLon::new(38.9, -77.0),
            &test_bounds(),
            &p,
        );
        let b = generate_route(
            &mut StdRng::seed_from_u64(9),
            LatLon::new(38.9, -77.0),
            &test_bounds(),
            &p,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid route parameters")]
    fn rejects_zero_step() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = RouteParams {
            step_m: 0.0,
            turn_sigma_rad: 0.1,
            length_m: 100.0,
            kind: RouteKind::Wander,
            initial_heading_rad: None,
        };
        generate_route(&mut rng, LatLon::new(0.0, 0.0), &test_bounds(), &p);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn blend_heading_wraps_correctly() {
        use std::f64::consts::PI;
        // Blending across the ±π seam takes the short way.
        let h = blend_heading(PI - 0.1, -PI + 0.1, 0.5);
        assert!((h - PI).abs() < 0.2 || (h + PI).abs() < 0.2);
    }
}
