//! Synthetic route and training-segment generation.
//!
//! The paper's three datasets come from (1) a volunteer athlete's
//! activity archive and (2–3) training-route segments mined from a
//! popular fitness-tracking website via its `EXPLORESEGMENTS()` API.
//! Neither source is available offline; this crate implements the
//! closest synthetic equivalents:
//!
//! - [`walk`]: momentum random walks producing realistic loop /
//!   out-and-back / wandering routes inside a bounding box,
//! - [`athlete`]: the [`AthleteSimulator`] — a habit-driven mobility
//!   model (home anchors, favourite-route reuse) whose GPX output has
//!   the dense sampling and ~35% route-overlap the paper reports for
//!   its user-specific dataset,
//! - [`segments`]: a per-city [`SegmentDatabase`] of user-created
//!   training segments with popularity scores and the top-10
//!   [`SegmentDatabase::explore_segments`] query,
//! - [`mining`]: the grid-decomposition mining pipeline of paper Fig. 4
//!   (boundary → grid regions → top-10 per region → elevation profile
//!   via the elevation service),
//! - [`population`]: the streaming million-athlete population
//!   generator — per-athlete habit models under a fixed seed tree,
//!   generated shard-by-shard so any shard regenerates independently
//!   and bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod athlete;
pub mod mining;
pub mod population;
pub mod segments;
pub mod walk;

pub use athlete::{Activity, AthleteConfig, AthleteSimulator};
pub use mining::{GridMiner, MinedSegment};
pub use population::{
    scale_athlete_config, AthleteHabits, AthleteRecord, PopulationConfig, PopulationShard,
};
pub use segments::{Segment, SegmentDatabase, SegmentParams, EXPLORE_TOP_K};
pub use walk::{generate_route, gaussian, RouteKind, RouteParams};
