//! Deeper invariants of the Fig. 4 mining pipeline: popularity bias,
//! regional coverage, and wire-format fidelity.

use geoprim::{polyline, BoundingBox, LatLon};
use routegen::{GridMiner, SegmentDatabase, SegmentParams, EXPLORE_TOP_K};
use terrain::{ElevationService, SyntheticTerrain};

fn dc_box() -> BoundingBox {
    BoundingBox::new(LatLon::new(38.78, -77.15), LatLon::new(39.02, -76.88))
}

fn db(count: usize, seed: u64) -> SegmentDatabase {
    SegmentDatabase::generate(
        seed,
        &dc_box(),
        &SegmentParams { count, length_m_range: (400.0, 1_200.0), max_popularity: 10_000 },
    )
}

#[test]
fn mining_is_biased_toward_popular_segments() {
    // Top-10 truncation per region is a *popularity* filter; the mined
    // sample must be more popular than the platform average. This is
    // the sampling bias the paper's datasets inherit from the real API.
    let database = db(1_500, 3);
    let service = ElevationService::new(SyntheticTerrain::new(3));
    let mined = GridMiner::new(5, 5).mine(&database, &dc_box(), &service);
    assert!(!mined.is_empty());

    let platform_mean: f64 = database
        .segments()
        .iter()
        .map(|s| s.popularity as f64)
        .sum::<f64>()
        / database.segments().len() as f64;
    let mined_mean: f64 = mined
        .iter()
        .map(|m| {
            database
                .segments()
                .iter()
                .find(|s| s.id == m.segment_id)
                .expect("mined ids exist")
                .popularity as f64
        })
        .sum::<f64>()
        / mined.len() as f64;
    assert!(
        mined_mean > platform_mean * 1.1,
        "mined mean popularity {mined_mean} vs platform {platform_mean}"
    );
}

#[test]
fn dense_platforms_fill_most_regions() {
    let database = db(2_000, 5);
    let service = ElevationService::new(SyntheticTerrain::new(5));
    let rows = 4;
    let mined = GridMiner::new(rows, rows).mine(&database, &dc_box(), &service);
    let mut regions: Vec<usize> = mined.iter().map(|m| m.region_index).collect();
    regions.sort_unstable();
    regions.dedup();
    assert!(
        regions.len() * 10 >= rows * rows * 8,
        "only {}/{} regions produced segments",
        regions.len(),
        rows * rows
    );
    // And busy regions saturate the top-10 cap.
    let saturated = (0..rows * rows)
        .filter(|r| mined.iter().filter(|m| m.region_index == *r).count() == EXPLORE_TOP_K)
        .count();
    assert!(saturated > 0, "no region saturated the explore cap");
}

#[test]
fn mined_paths_survive_polyline_wire_format() {
    // The miner consumes polyline-encoded paths; decoded coordinates
    // must stay within the codec's 1e-5-degree quantization of the
    // original segment geometry.
    let database = db(300, 7);
    let service = ElevationService::new(SyntheticTerrain::new(7));
    let mined = GridMiner::new(3, 3).mine(&database, &dc_box(), &service);
    for m in &mined {
        let original = &database
            .segments()
            .iter()
            .find(|s| s.id == m.segment_id)
            .expect("mined ids exist")
            .path;
        assert_eq!(m.path.len(), original.len());
        for (a, b) in m.path.iter().zip(original) {
            assert!((a.lat - b.lat).abs() < 1e-5 + 1e-9);
            assert!((a.lon - b.lon).abs() < 1e-5 + 1e-9);
        }
        // Re-encoding the decoded path is a fixed point of the codec.
        let re = polyline::decode(&polyline::encode(&m.path)).unwrap();
        assert_eq!(re, m.path);
    }
}

#[test]
fn elevation_profiles_are_pointwise_queries() {
    // Per-vertex profiles: the elevation at index i is the model's
    // value at path vertex i (not an arc-length resample).
    let database = db(150, 9);
    let terrain = SyntheticTerrain::new(9);
    let service = ElevationService::new(SyntheticTerrain::new(9));
    let mined = GridMiner::new(3, 3).mine(&database, &dc_box(), &service);
    use terrain::ElevationModel;
    for m in mined.iter().take(10) {
        for (p, &e) in m.path.iter().zip(&m.elevation) {
            assert_eq!(terrain.elevation_at(*p), e);
        }
    }
}
