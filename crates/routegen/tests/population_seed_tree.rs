//! The seed-tree contracts of the streaming population generator:
//!
//! 1. **Prefix stability** — the population with `n` athletes is a
//!    strict prefix of the one with `2n` under the same seed tree, so
//!    accuracy-vs-population sweeps nest (property test);
//! 2. **Per-(city, athlete) seeding** — the legacy pattern seeded one
//!    simulator per *city* and let every athlete share its RNG stream,
//!    so adding an athlete (or activity) perturbed everyone generated
//!    after it. The tests pin both halves: the legacy stream really is
//!    order-coupled (the "before"), and the seed-tree path is not (the
//!    "after").

use proptest::prelude::*;
use routegen::{AthleteSimulator, PopulationConfig};
use terrain::{CityId, SyntheticTerrain};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: `n` athletes are a strict prefix of `2n` (same seed
    /// tree), athlete by athlete, bit for bit.
    #[test]
    fn population_n_is_strict_prefix_of_2n(n in 3usize..9, seed in 0u64..1_000) {
        let small = PopulationConfig { shard_size: 4, ..PopulationConfig::new(n, seed) };
        let big = PopulationConfig { shard_size: 4, ..PopulationConfig::new(2 * n, seed) };
        let terrain = small.terrain();

        let small_athletes: Vec<_> =
            (0..n as u64).map(|id| small.generate_athlete(&terrain, id)).collect();
        let big_athletes: Vec<_> =
            (0..2 * n as u64).map(|id| big.generate_athlete(&terrain, id)).collect();

        prop_assert_eq!(&big_athletes[..n], &small_athletes[..]);
        // Strict prefix: the larger population actually continues.
        prop_assert!(big_athletes.len() > small_athletes.len());

        // The same nesting holds at shard granularity: every shard of
        // the small population fingerprints identically in the big one
        // (shard size divides n here, so shard boundaries align).
        for s in 0..small.n_shards() {
            if small.shard_range(s).end <= n as u64 && (s + 1) * small.shard_size <= n {
                prop_assert_eq!(
                    small.generate_shard(&terrain, s).fingerprint(),
                    big.generate_shard(&terrain, s).fingerprint()
                );
            }
        }
    }
}

/// "Before": the legacy shared-stream API really couples athletes.
/// One simulator per city means athlete B's activities depend on how
/// many draws athlete A consumed — inserting one extra activity for A
/// shifts everything B generates afterwards. This is the defect the
/// seed tree fixes; the pin documents it so the contrast below stays
/// honest.
#[test]
fn legacy_shared_stream_couples_athletes() {
    let city = CityId::WashingtonDc;

    // Run 1: athlete A records one activity, then athlete B records one.
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(7), 1234);
    let _a = sim.generate_one(city);
    let b_without_insert = sim.generate_one(city);

    // Run 2: same seed, but A records one *extra* activity first.
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(7), 1234);
    let _a = sim.generate_one(city);
    let _a_extra = sim.generate_one(city);
    let b_with_insert = sim.generate_one(city);

    assert_ne!(
        b_without_insert, b_with_insert,
        "the legacy shared stream was expected to couple athletes; \
         if this now passes, the before/after pin below is vacuous"
    );
}

/// "After": with the seed tree threaded down to `(city, athlete)`,
/// adding an athlete — or giving an existing athlete more activities —
/// never perturbs anyone else.
#[test]
fn seed_tree_decouples_athletes() {
    let cfg = PopulationConfig { shard_size: 8, ..PopulationConfig::new(6, 7) };
    let bigger = PopulationConfig { athletes: 7, ..cfg.clone() };
    let terrain = cfg.terrain();

    // Adding athlete 6 leaves athletes 0..6 untouched.
    for id in 0..6 {
        assert_eq!(
            cfg.generate_athlete(&terrain, id),
            bigger.generate_athlete(&terrain, id),
            "athlete {id} perturbed by a population extension"
        );
    }

    // Extending athlete 2's stream (the probe draw) leaves athlete 3
    // untouched: streams are per-leaf, not interleaved.
    let before = cfg.generate_athlete(&terrain, 3);
    let _probe = cfg.athlete_activities(&terrain, 2, 5);
    assert_eq!(cfg.generate_athlete(&terrain, 3), before);

    // And the direct constructor contract: per-(city, athlete) seeds,
    // so the same coordinates always rebuild the same stream.
    let a = AthleteSimulator::for_athlete(SyntheticTerrain::new(7), 42, 3, 11)
        .generate_one(CityId::Miami);
    let b = AthleteSimulator::for_athlete(SyntheticTerrain::new(7), 42, 3, 11)
        .generate_one(CityId::Miami);
    assert_eq!(a, b);
    let c = AthleteSimulator::for_athlete(SyntheticTerrain::new(7), 42, 3, 12)
        .generate_one(CityId::Miami);
    assert_ne!(a, c, "distinct athletes must get distinct streams");
}
