//! Property-based tests for route generation and the segment platform.

use geoprim::{BoundingBox, LatLon};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routegen::{
    generate_route, AthleteSimulator, RouteKind, RouteParams, SegmentDatabase, SegmentParams,
    EXPLORE_TOP_K,
};
use terrain::{CityId, SyntheticTerrain};

fn dc_box() -> BoundingBox {
    BoundingBox::new(LatLon::new(38.75, -77.2), LatLon::new(39.05, -76.85))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routes_have_constant_step_length(
        seed in 0u64..500,
        length in 500.0f64..4000.0,
        kind_idx in 0usize..3,
    ) {
        let kind = [RouteKind::Wander, RouteKind::Loop, RouteKind::OutAndBack][kind_idx];
        let params = RouteParams::activity(length, kind);
        let mut rng = StdRng::seed_from_u64(seed);
        let route = generate_route(&mut rng, LatLon::new(38.9, -77.0), &dc_box(), &params);
        prop_assert!(route.len() >= 2);
        for w in route.windows(2) {
            let d = w[0].haversine_m(w[1]);
            // Steps are ~step_m except the OutAndBack jittered retrace.
            prop_assert!(d < params.step_m * 2.5 + 10.0, "step {d}");
        }
    }

    #[test]
    fn loops_close(seed in 0u64..200, length in 2000.0f64..6000.0) {
        let params = RouteParams::activity(length, RouteKind::Loop);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = LatLon::new(38.9, -77.0);
        let route = generate_route(&mut rng, start, &dc_box(), &params);
        let end = *route.last().unwrap();
        prop_assert!(start.haversine_m(end) < length * 0.15,
            "loop of {length} m ended {:.0} m away", start.haversine_m(end));
    }

    #[test]
    fn explore_is_a_filter_of_the_database(seed in 0u64..100, count in 10usize..120) {
        let params = SegmentParams { count, ..Default::default() };
        let db = SegmentDatabase::generate(seed, &dc_box(), &params);
        prop_assert_eq!(db.segments().len(), count);
        for cell in dc_box().grid(3, 3) {
            let hits = db.explore_segments(&cell);
            prop_assert!(hits.len() <= EXPLORE_TOP_K);
            for h in hits {
                prop_assert!(cell.encloses(&h.bbox));
                // Every hit is actually in the database.
                prop_assert!(db.segments().iter().any(|s| s.id == h.id));
            }
        }
    }

    #[test]
    fn athlete_profiles_match_trajectories(seed in 0u64..100) {
        let mut sim = AthleteSimulator::new(SyntheticTerrain::new(seed), seed);
        let act = sim.generate_one(CityId::Tampa);
        prop_assert_eq!(act.elevation_profile().len(), act.trajectory().len());
        prop_assert!(act.gpx.point_count() >= 2);
    }

    #[test]
    fn gpx_export_of_activities_always_parses(seed in 0u64..100) {
        let mut sim = AthleteSimulator::new(SyntheticTerrain::new(seed), seed ^ 0xF00D);
        let act = sim.generate_one(CityId::Miami);
        let parsed = gpxfile::Gpx::parse(&act.gpx.to_xml()).unwrap();
        prop_assert_eq!(parsed.point_count(), act.gpx.point_count());
    }
}
