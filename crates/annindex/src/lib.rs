//! Deterministic inverted-file (IVF) index over the feature store.
//!
//! The scale sweeps match one probe profile against every stored row —
//! a brute-force cosine scan whose cost is linear in the candidate
//! population. This crate gives the adversary the sublinear candidate
//! retrieval the web-scale re-identification literature assumes: a
//! seeded spherical k-means **codebook** quantizes every row to its
//! nearest centroid, per-shard **posting lists** record which rows
//! landed in each cell, and a query scores the centroids, scans only
//! the `nprobe` closest lists, and rescores candidates with the exact
//! sparse dot product. The brute-force scan stays as the exact
//! reference path; recall against it is measured, not assumed.
//!
//! Everything is deterministic by construction:
//!
//! - **training** is pure in `(shard-0 rows, k, seed)`: seeded draws
//!   come from `exec::mix_seed`, assignments run through the
//!   order-preserving [`exec::Executor`] map, and centroid updates
//!   accumulate serially in batch order — bit-identical at any
//!   `ELEV_THREADS`, and prefix-stable because shard 0 is a prefix of
//!   every population size;
//! - **files** follow the `.elevmdl` framing discipline (magic /
//!   version header, `len u32 | payload | FNV-1a-64` records, footer
//!   with record count and whole-file checksum, manifest published
//!   last via [`featstore::atomic_write`]), so torn writes classify as
//!   the same structured [`StoreError`] classes the feature store
//!   pins;
//! - **queries** iterate centroids, entries, and probes in fixed
//!   ascending order, so merged results are invariant to thread count
//!   and shard order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use exec::Executor;
use featstore::{
    atomic_write, fnv1a64, fnv1a64_continue, FeatureStore, RowBuf, StoreError,
};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// IVF sidecar files start with these bytes.
pub const MAGIC: &[u8; 8] = b"ELEVANN\x01";

/// Container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed sidecar header (magic + version + two
/// u64 shape fields + config fingerprint + header checksum) — the
/// same shape as the feature store's.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// Index manifest file name, written last on publish.
pub const ANN_MANIFEST: &str = "ann.txt";

/// Codebook file name under the store directory.
pub const CODEBOOK_FILE: &str = "codebook.ann";

const TAG_CENTROID: u32 = 1;
const TAG_LIST: u32 = 1;
const TAG_FOOTER: u32 = 2;

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// Canonical posting-list sidecar file name of shard `index`.
pub fn ann_shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.ivf")
}

/// L2 norm of a value slice.
pub fn l2(values: &[f32]) -> f32 {
    values.iter().map(|v| v * v).sum::<f32>().sqrt()
}

// ---- framing (the `.elevmdl` discipline, sidecar flavour) --------------

/// Append-only writer for one framed sidecar file: buffered,
/// checksummed records, footer + fsync + atomic rename on finish.
struct FramedWriter {
    file: std::io::BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
    offset: u64,
    content_fnv: u64,
    records: u64,
}

impl FramedWriter {
    fn create(path: &Path, a: u64, b: u64, config: u64) -> Result<Self, StoreError> {
        let dir = path
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
            .ok_or_else(|| StoreError::Io(format!("{} has no parent", path.display())))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .ok_or_else(|| StoreError::Io(format!("{} has no file name", path.display())))?;
        let tmp = dir.join(format!(".{name}.tmp"));
        let file = File::create(&tmp).map_err(io_err)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&a.to_le_bytes());
        header.extend_from_slice(&b.to_le_bytes());
        header.extend_from_slice(&config.to_le_bytes());
        let fnv = fnv1a64(&header);
        header.extend_from_slice(&fnv.to_le_bytes());
        let mut w = Self {
            file: std::io::BufWriter::new(file),
            tmp,
            path: path.to_path_buf(),
            offset: 0,
            content_fnv: 0xcbf2_9ce4_8422_2325,
            records: 0,
        };
        w.write_raw(&header)?;
        Ok(w)
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file.write_all(bytes).map_err(io_err)?;
        self.content_fnv = fnv1a64_continue(self.content_fnv, bytes);
        self.offset += bytes.len() as u64;
        Ok(())
    }

    fn write_record(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let mut rec = Vec::with_capacity(4 + payload.len() + 8);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        self.write_raw(&rec)?;
        self.records += 1;
        Ok(self.offset)
    }

    fn finish(mut self) -> Result<u64, StoreError> {
        let mut p = Vec::with_capacity(4 + 8 + 8);
        p.extend_from_slice(&TAG_FOOTER.to_le_bytes());
        p.extend_from_slice(&self.records.to_le_bytes());
        p.extend_from_slice(&self.content_fnv.to_le_bytes());
        // The footer is not itself counted in `records`.
        let mut rec = Vec::with_capacity(4 + p.len() + 8);
        rec.extend_from_slice(&(p.len() as u32).to_le_bytes());
        rec.extend_from_slice(&p);
        rec.extend_from_slice(&fnv1a64(&p).to_le_bytes());
        self.write_raw(&rec)?;
        self.file.flush().map_err(io_err)?;
        self.file.get_ref().sync_all().map_err(io_err)?;
        std::fs::rename(&self.tmp, &self.path).map_err(io_err)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(self.offset)
    }
}

/// Streaming reader over one framed sidecar file; every corruption
/// mode classifies exactly as the feature store's reader does.
struct FramedReader {
    file: File,
    len: u64,
    offset: u64,
    a: u64,
    b: u64,
    config: u64,
    records_seen: u64,
    done: bool,
    content_fnv: u64,
}

impl FramedReader {
    fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path).map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        let mut header = [0u8; HEADER_LEN];
        if (len as usize) < HEADER_LEN {
            let mut prefix = vec![0u8; len as usize];
            read_exact_at(&file, &mut prefix, 0)?;
            if len >= 8 && &prefix[..8] != MAGIC {
                return Err(StoreError::BadMagic);
            }
            return Err(StoreError::Truncated {
                offset: 0,
                needed: HEADER_LEN - len as usize,
                len: len as usize,
            });
        }
        read_exact_at(&file, &mut header, 0)?;
        if &header[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let stored = u64::from_le_bytes(header[HEADER_LEN - 8..].try_into().expect("8 bytes"));
        let computed = fnv1a64(&header[..HEADER_LEN - 8]);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        Ok(Self {
            file,
            len,
            offset: HEADER_LEN as u64,
            a: u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")),
            b: u64::from_le_bytes(header[20..28].try_into().expect("8 bytes")),
            config: u64::from_le_bytes(header[28..36].try_into().expect("8 bytes")),
            records_seen: 0,
            done: false,
            content_fnv: fnv1a64(&header),
        })
    }

    fn truncated(&self, needed: usize) -> StoreError {
        StoreError::Truncated { offset: self.offset as usize, needed, len: self.len as usize }
    }

    /// Reads the next non-footer record payload into `payload`;
    /// returns `false` once the footer has been reached and verified.
    fn next_record(&mut self, payload: &mut Vec<u8>) -> Result<bool, StoreError> {
        if self.done {
            return Ok(false);
        }
        let remaining = (self.len - self.offset) as usize;
        if remaining == 0 {
            return Err(self.truncated(4));
        }
        if remaining < 4 {
            return Err(self.truncated(4 - remaining));
        }
        let mut len4 = [0u8; 4];
        read_exact_at(&self.file, &mut len4, self.offset)?;
        let payload_len = u32::from_le_bytes(len4) as usize;
        if remaining < 4 + payload_len + 8 {
            return Err(self.truncated(4 + payload_len + 8 - remaining));
        }
        let mut scratch = vec![0u8; payload_len + 8];
        read_exact_at(&self.file, &mut scratch, self.offset + 4)?;
        let (body, fnv8) = scratch.split_at(payload_len);
        let stored = u64::from_le_bytes(fnv8.try_into().expect("8 bytes"));
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        let pre_record_fnv = self.content_fnv;
        self.content_fnv = fnv1a64_continue(self.content_fnv, &len4);
        self.content_fnv = fnv1a64_continue(self.content_fnv, &scratch);
        self.offset += 4 + scratch.len() as u64;

        let mut d = Dec { buf: body, pos: 0 };
        let tag = d.u32()?;
        if tag == TAG_FOOTER {
            let records = d.u64()?;
            let whole = d.u64()?;
            d.end()?;
            if records != self.records_seen {
                return Err(StoreError::Malformed(format!(
                    "footer promises {records} records, file contains {}",
                    self.records_seen
                )));
            }
            if whole != pre_record_fnv {
                return Err(StoreError::ChecksumMismatch {
                    stored: whole,
                    computed: pre_record_fnv,
                });
            }
            if self.offset != self.len {
                return Err(StoreError::Malformed(format!(
                    "{} trailing bytes after footer",
                    self.len - self.offset
                )));
            }
            self.done = true;
            return Ok(false);
        }
        payload.clear();
        payload.extend_from_slice(body);
        self.records_seen += 1;
        Ok(true)
    }
}

/// Positioned read: `pread` on unix, seek+read elsewhere.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset).map_err(io_err)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        f.read_exact(buf).map_err(io_err)
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Malformed(format!(
                "payload ends at {} of a {n}-byte field",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn end(&self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---- the codebook ------------------------------------------------------

const INIT_DOMAIN: u64 = 0xA55C_01DE;
const BATCH_DOMAIN: u64 = 0xBA7C_4B17;

/// Mini-batch refinement passes over the seeded initialization.
const TRAIN_ITERS: usize = 6;

/// Rows drawn per refinement pass (capped at the training-set size).
const TRAIN_BATCH: usize = 2048;

/// A spherical k-means codebook: `k` unit-norm dense centroids over
/// the feature space. Training is a pure function of
/// `(rows, n_cols, k, seed)` — see the crate docs for why that holds
/// at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    k: usize,
    n_cols: usize,
    centroids: Vec<f32>,
}

impl Codebook {
    /// Trains `k` centroids on `rows` (normally the shard-0 rows of a
    /// feature store). `k` is clamped to the number of usable
    /// (nonzero-norm) rows; with no usable rows the codebook degrades
    /// to a single zero centroid.
    pub fn train(rows: &[RowBuf], n_cols: usize, k: usize, seed: u64, exec: &Executor) -> Self {
        let usable: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| l2(&r.values) > 0.0)
            .map(|(i, _)| i)
            .collect();
        let k = k.clamp(1, usable.len().max(1));
        let mut centroids = vec![0f32; k * n_cols];
        if usable.is_empty() {
            return Self { k, n_cols, centroids };
        }

        // Seeded init: the first k distinct usable rows drawn from the
        // mix_seed stream, L2-normalised onto the sphere.
        let mut picked = std::collections::BTreeSet::new();
        let (mut placed, mut draw) = (0usize, 0u64);
        while placed < k {
            let j = usable[(exec::mix_seed(seed ^ INIT_DOMAIN, draw) % usable.len() as u64) as usize];
            draw += 1;
            if !picked.insert(j) {
                continue;
            }
            let row = &rows[j];
            let inv = 1.0 / l2(&row.values);
            let base = placed * n_cols;
            for (i, &idx) in row.indices.iter().enumerate() {
                centroids[base + idx as usize] = row.values[i] * inv;
            }
            placed += 1;
        }

        // Mini-batch refinement: assignment fans out through the
        // order-preserving executor map; the centroid update
        // accumulates serially in batch order, so the result is
        // bit-identical at any thread count.
        let batch = usable.len().min(TRAIN_BATCH);
        for t in 0..TRAIN_ITERS {
            let cb = Self { k, n_cols, centroids: centroids.clone() };
            let batch_rows: Vec<usize> = (0..batch)
                .map(|j| {
                    let r = exec::mix_seed(seed ^ BATCH_DOMAIN ^ (t as u64 + 1), j as u64);
                    usable[(r % usable.len() as u64) as usize]
                })
                .collect();
            let assigned = exec.map(&batch_rows, |_, &j| cb.assign(&rows[j].indices, &rows[j].values));
            let mut sums = vec![0f32; k * n_cols];
            let mut counts = vec![0u64; k];
            for (&j, &c) in batch_rows.iter().zip(&assigned) {
                let row = &rows[j];
                let inv = 1.0 / l2(&row.values);
                let base = c as usize * n_cols;
                for (i, &idx) in row.indices.iter().enumerate() {
                    sums[base + idx as usize] += row.values[i] * inv;
                }
                counts[c as usize] += 1;
            }
            for c in 0..k {
                if counts[c] == 0 {
                    continue;
                }
                let slice = &mut sums[c * n_cols..(c + 1) * n_cols];
                let norm = l2(slice);
                if norm > 0.0 {
                    for v in slice.iter_mut() {
                        *v /= norm;
                    }
                    centroids[c * n_cols..(c + 1) * n_cols].copy_from_slice(slice);
                }
            }
        }
        Self { k, n_cols, centroids }
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Feature-space width.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn centroid_dot(&self, c: usize, indices: &[u32], values: &[f32]) -> f32 {
        let base = c * self.n_cols;
        indices
            .iter()
            .zip(values)
            .map(|(&i, &v)| self.centroids[base + i as usize] * v)
            .sum()
    }

    /// The cell a row quantizes to: highest centroid dot, ties to the
    /// lowest centroid index.
    pub fn assign(&self, indices: &[u32], values: &[f32]) -> u32 {
        let (mut best, mut best_score) = (0u32, f32::NEG_INFINITY);
        for c in 0..self.k {
            let s = self.centroid_dot(c, indices, values);
            if s > best_score {
                best_score = s;
                best = c as u32;
            }
        }
        best
    }

    /// The `nprobe` centroids closest to a probe, score-descending
    /// with ties broken on the lower centroid index.
    pub fn top_centroids(&self, indices: &[u32], values: &[f32], nprobe: usize) -> Vec<u32> {
        let mut scored: Vec<(f32, u32)> = (0..self.k)
            .map(|c| (self.centroid_dot(c, indices, values), c as u32))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(nprobe.clamp(1, self.k));
        scored.into_iter().map(|(_, c)| c).collect()
    }

    /// Writes the codebook to `path` in the framed sidecar format,
    /// stamped with the store config fingerprint.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path, config: u64) -> Result<(), StoreError> {
        let mut w = FramedWriter::create(path, self.k as u64, self.n_cols as u64, config)?;
        for c in 0..self.k {
            let mut p = Vec::with_capacity(4 + 4 + self.n_cols * 4);
            p.extend_from_slice(&TAG_CENTROID.to_le_bytes());
            p.extend_from_slice(&(c as u32).to_le_bytes());
            for &v in &self.centroids[c * self.n_cols..(c + 1) * self.n_cols] {
                p.extend_from_slice(&v.to_le_bytes());
            }
            w.write_record(&p)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Loads a codebook from `path`, rejecting one built for a
    /// different store config.
    ///
    /// # Errors
    ///
    /// The full [`StoreError`] corruption ladder, plus
    /// [`StoreError::Malformed`] on a config mismatch.
    pub fn load(path: &Path, config: u64) -> Result<Self, StoreError> {
        let mut r = FramedReader::open(path)?;
        if r.config != config {
            return Err(StoreError::Malformed(format!(
                "codebook built for config {:016x}, store has {config:016x}",
                r.config
            )));
        }
        let (k, n_cols) = (r.a as usize, r.b as usize);
        let mut centroids = vec![0f32; k * n_cols];
        let mut payload = Vec::new();
        let mut next = 0usize;
        while r.next_record(&mut payload)? {
            let mut d = Dec { buf: &payload, pos: 0 };
            let tag = d.u32()?;
            if tag != TAG_CENTROID {
                return Err(StoreError::Malformed(format!("unknown codebook tag {tag}")));
            }
            let c = d.u32()? as usize;
            if c != next || c >= k {
                return Err(StoreError::Malformed(format!(
                    "centroid {c} out of sequence (expected {next} of {k})"
                )));
            }
            for slot in centroids[c * n_cols..(c + 1) * n_cols].iter_mut() {
                *slot = f32::from_bits(d.u32()?);
            }
            d.end()?;
            next += 1;
        }
        if next != k {
            return Err(StoreError::Malformed(format!(
                "codebook holds {next} centroids, header promises {k}"
            )));
        }
        Ok(Self { k, n_cols, centroids })
    }
}

// ---- posting lists -----------------------------------------------------

/// One row's entry in a posting list: where the full record lives
/// (for exact rescoring) plus the fields matching needs without a
/// read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostingEntry {
    /// Byte offset of the row record in its shard file.
    pub offset: u64,
    /// Global athlete id.
    pub athlete: u64,
    /// Home-city label.
    pub city: u32,
    /// L2 norm of the row's values (for cosine denominators).
    pub norm: f32,
}

/// Quantizes every row of store shard `shard` with `codebook`,
/// returning one posting list per centroid (entries in row order).
///
/// # Errors
///
/// Any [`StoreError`] from streaming the shard.
pub fn build_shard_postings(
    store: &FeatureStore,
    shard: usize,
    codebook: &Codebook,
) -> Result<Vec<Vec<PostingEntry>>, StoreError> {
    let mut lists = vec![Vec::new(); codebook.k()];
    let mut reader = store.reader(shard)?;
    let mut row = RowBuf::default();
    loop {
        let offset = reader.stream_offset();
        if !reader.next_row(&mut row)? {
            break;
        }
        let c = codebook.assign(&row.indices, &row.values) as usize;
        lists[c].push(PostingEntry {
            offset,
            athlete: row.athlete,
            city: row.city,
            norm: l2(&row.values),
        });
    }
    Ok(lists)
}

/// Writes one shard's posting lists as a framed `.ivf` sidecar;
/// returns the file's byte length.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure.
pub fn write_postings(
    path: &Path,
    shard_index: usize,
    config: u64,
    lists: &[Vec<PostingEntry>],
) -> Result<u64, StoreError> {
    let mut w = FramedWriter::create(path, shard_index as u64, lists.len() as u64, config)?;
    for (c, list) in lists.iter().enumerate() {
        let mut p = Vec::with_capacity(4 + 4 + 4 + list.len() * 24);
        p.extend_from_slice(&TAG_LIST.to_le_bytes());
        p.extend_from_slice(&(c as u32).to_le_bytes());
        p.extend_from_slice(&(list.len() as u32).to_le_bytes());
        for e in list {
            p.extend_from_slice(&e.offset.to_le_bytes());
            p.extend_from_slice(&e.athlete.to_le_bytes());
            p.extend_from_slice(&e.city.to_le_bytes());
            p.extend_from_slice(&e.norm.to_le_bytes());
        }
        w.write_record(&p)?;
    }
    w.finish()
}

/// Reads one shard's posting lists back, cross-checking the header
/// against the expected shard index, centroid count, and config.
///
/// # Errors
///
/// The full [`StoreError`] corruption ladder, plus
/// [`StoreError::Malformed`] when the header disagrees with the
/// expectation.
pub fn read_postings(
    path: &Path,
    shard_index: usize,
    k: usize,
    config: u64,
) -> Result<Vec<Vec<PostingEntry>>, StoreError> {
    let mut r = FramedReader::open(path)?;
    if r.a != shard_index as u64 || r.b != k as u64 || r.config != config {
        return Err(StoreError::Malformed(format!(
            "posting sidecar header (shard {}, k {}, config {:016x}) disagrees with \
             expectation (shard {shard_index}, k {k}, config {config:016x})",
            r.a, r.b, r.config
        )));
    }
    let mut lists = vec![Vec::new(); k];
    let mut payload = Vec::new();
    let mut next = 0usize;
    while r.next_record(&mut payload)? {
        let mut d = Dec { buf: &payload, pos: 0 };
        let tag = d.u32()?;
        if tag != TAG_LIST {
            return Err(StoreError::Malformed(format!("unknown posting tag {tag}")));
        }
        let c = d.u32()? as usize;
        if c != next || c >= k {
            return Err(StoreError::Malformed(format!(
                "posting list {c} out of sequence (expected {next} of {k})"
            )));
        }
        let count = d.u32()? as usize;
        let list = &mut lists[c];
        list.reserve(count);
        for _ in 0..count {
            list.push(PostingEntry {
                offset: d.u64()?,
                athlete: d.u64()?,
                city: d.u32()?,
                norm: f32::from_bits(d.u32()?),
            });
        }
        d.end()?;
        next += 1;
    }
    if next != k {
        return Err(StoreError::Malformed(format!(
            "sidecar holds {next} posting lists, header promises {k}"
        )));
    }
    Ok(lists)
}

// ---- the index manifest ------------------------------------------------

/// One shard's sidecar entry in the index manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnShardEntry {
    /// Shard index.
    pub index: usize,
    /// Sidecar file name under the store directory.
    pub file: String,
    /// Posting entries across all of the sidecar's lists.
    pub entries: u64,
}

/// The parsed index manifest (`ann.txt`), written last on publish so
/// a complete manifest implies complete sidecars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnManifest {
    /// Store config fingerprint the index was built over.
    pub config: u64,
    /// Store manifest generation the index covers.
    pub generation: u64,
    /// Centroids requested at build time (the codebook may clamp
    /// lower when shard 0 has fewer usable rows).
    pub k: u64,
    /// Training seed.
    pub seed: u64,
    /// Feature-space width.
    pub n_cols: u64,
    /// Sidecar entries in ascending shard order.
    pub shards: Vec<AnnShardEntry>,
}

impl AnnManifest {
    /// Renders the manifest text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("elevann v1\n");
        out.push_str(&format!("config {:016x}\n", self.config));
        out.push_str(&format!("generation {}\n", self.generation));
        out.push_str(&format!("k {}\n", self.k));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("n_cols {}\n", self.n_cols));
        out.push_str(&format!("shards {}\n", self.shards.len()));
        for s in &self.shards {
            out.push_str(&format!("{} {} {}\n", s.index, s.file, s.entries));
        }
        out
    }

    /// Parses manifest text.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] on any structural defect.
    pub fn parse(text: &str) -> Result<Self, StoreError> {
        let mut lines = text.lines();
        let bad = |m: &str| StoreError::Malformed(format!("ann manifest: {m}"));
        if lines.next() != Some("elevann v1") {
            return Err(bad("missing or unsupported header line"));
        }
        let mut field = |name: &str| -> Result<String, StoreError> {
            let line = lines.next().ok_or_else(|| bad(&format!("missing {name}")))?;
            line.strip_prefix(&format!("{name} "))
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("expected `{name} ...`, got `{line}`")))
        };
        let config =
            u64::from_str_radix(&field("config")?, 16).map_err(|_| bad("config is not hex"))?;
        let generation = field("generation")?.parse().map_err(|_| bad("generation"))?;
        let k = field("k")?.parse().map_err(|_| bad("k"))?;
        let seed = field("seed")?.parse().map_err(|_| bad("seed"))?;
        let n_cols = field("n_cols")?.parse().map_err(|_| bad("n_cols"))?;
        let count: usize = field("shards")?.parse().map_err(|_| bad("shards"))?;
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| bad("manifest ends mid shard list"))?;
            let mut parts = line.split_whitespace();
            let index = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(&format!("bad shard line `{line}`")))?;
            let file = parts
                .next()
                .ok_or_else(|| bad(&format!("bad shard line `{line}`")))?
                .to_owned();
            let entries = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(&format!("bad shard line `{line}`")))?;
            if parts.next().is_some() {
                return Err(bad(&format!("trailing fields in `{line}`")));
            }
            shards.push(AnnShardEntry { index, file, entries });
        }
        if shards.iter().enumerate().any(|(i, s)| s.index != i) {
            return Err(bad("shard indices are not dense ascending"));
        }
        Ok(Self { config, generation, k, seed, n_cols, shards })
    }
}

// ---- the index ---------------------------------------------------------

/// An opened IVF index: the manifest plus the loaded codebook,
/// rooted in the feature-store directory it indexes.
#[derive(Debug, Clone)]
pub struct AnnIndex {
    dir: PathBuf,
    manifest: AnnManifest,
    codebook: Codebook,
}

impl AnnIndex {
    /// Opens a published index under `dir` and loads its codebook.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when no manifest exists; any corruption
    /// class from the manifest or codebook; [`StoreError::Malformed`]
    /// when codebook and manifest disagree.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(dir.join(ANN_MANIFEST)).map_err(io_err)?;
        let manifest = AnnManifest::parse(&text)?;
        let codebook = Codebook::load(&dir.join(CODEBOOK_FILE), manifest.config)?;
        if codebook.n_cols() as u64 != manifest.n_cols {
            return Err(StoreError::Malformed(format!(
                "codebook spans {} columns, manifest promises {}",
                codebook.n_cols(),
                manifest.n_cols
            )));
        }
        Ok(Self { dir: dir.to_path_buf(), manifest, codebook })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &AnnManifest {
        &self.manifest
    }

    /// The loaded codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Loads shard `shard`'s posting lists.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] for an unknown shard; any corruption
    /// class from the sidecar.
    pub fn postings(&self, shard: usize) -> Result<Vec<Vec<PostingEntry>>, StoreError> {
        let entry = self
            .manifest
            .shards
            .get(shard)
            .ok_or_else(|| StoreError::Malformed(format!("no sidecar for shard {shard}")))?;
        read_postings(&self.dir.join(&entry.file), shard, self.codebook.k(), self.manifest.config)
    }

    /// Ensures an index matching `store` at `(k, seed)` exists in the
    /// store directory, building or incrementally extending as
    /// needed; returns the index plus whether it was reused as-is.
    ///
    /// A published index is reused when config, `k`, `seed`, and
    /// generation all match. When only new shards were appended (the
    /// config still matches and the sidecar list is a prefix of the
    /// store's shard list), sidecars for the new shards are built from
    /// the frozen codebook — the incremental path. Anything else
    /// rebuilds from scratch.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from reading the store or writing the index.
    pub fn ensure(
        store: &FeatureStore,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<(Self, bool), StoreError> {
        let m = store.manifest();
        if let Ok(idx) = Self::open(store.dir()) {
            let compatible = idx.manifest.config == m.config
                && idx.manifest.k == k as u64
                && idx.manifest.seed == seed
                && idx.manifest.n_cols == m.n_cols
                && idx.manifest.shards.len() <= m.shards.len();
            if compatible {
                if idx.manifest.generation == m.generation
                    && idx.manifest.shards.len() == m.shards.len()
                {
                    return Ok((idx, true));
                }
                if idx.manifest.shards.len() < m.shards.len() {
                    return idx.extend(store, exec).map(|i| (i, false));
                }
            }
        }
        Self::build(store, k, seed, exec).map(|i| (i, false))
    }

    /// Builds the index from scratch: trains the codebook on shard-0
    /// rows, writes every sidecar shard-parallel, publishes the
    /// manifest last.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from reading the store or writing files.
    pub fn build(
        store: &FeatureStore,
        k: usize,
        seed: u64,
        exec: &Executor,
    ) -> Result<Self, StoreError> {
        let m = store.manifest();
        let rows = read_shard_rows(store, 0)?;
        let codebook = Codebook::train(&rows, m.n_cols as usize, k, seed, exec);
        codebook.save(&store.dir().join(CODEBOOK_FILE), m.config)?;

        let shard_ids: Vec<usize> = (0..m.shards.len()).collect();
        let entries = exec.map(&shard_ids, |_, &s| -> Result<u64, StoreError> {
            let lists = build_shard_postings(store, s, &codebook)?;
            let n: u64 = lists.iter().map(|l| l.len() as u64).sum();
            write_postings(&store.dir().join(ann_shard_file_name(s)), s, m.config, &lists)?;
            Ok(n)
        });
        let entries: Vec<u64> = entries.into_iter().collect::<Result<_, _>>()?;

        let manifest = AnnManifest {
            config: m.config,
            generation: m.generation,
            k: k as u64,
            seed,
            n_cols: m.n_cols,
            shards: entries
                .iter()
                .enumerate()
                .map(|(i, &n)| AnnShardEntry {
                    index: i,
                    file: ann_shard_file_name(i),
                    entries: n,
                })
                .collect(),
        };
        atomic_write(&store.dir().join(ANN_MANIFEST), manifest.render().as_bytes())?;
        Ok(Self { dir: store.dir().to_path_buf(), manifest, codebook })
    }

    /// Extends the index over shards appended to the store since it
    /// was built, quantizing them with the frozen codebook.
    fn extend(mut self, store: &FeatureStore, exec: &Executor) -> Result<Self, StoreError> {
        let m = store.manifest();
        let codebook = &self.codebook;
        let new_ids: Vec<usize> = (self.manifest.shards.len()..m.shards.len()).collect();
        let entries = exec.map(&new_ids, |_, &s| -> Result<u64, StoreError> {
            let lists = build_shard_postings(store, s, codebook)?;
            let n: u64 = lists.iter().map(|l| l.len() as u64).sum();
            write_postings(&store.dir().join(ann_shard_file_name(s)), s, m.config, &lists)?;
            Ok(n)
        });
        let entries: Vec<u64> = entries.into_iter().collect::<Result<_, _>>()?;
        for (&s, &n) in new_ids.iter().zip(&entries) {
            self.manifest.shards.push(AnnShardEntry {
                index: s,
                file: ann_shard_file_name(s),
                entries: n,
            });
        }
        self.manifest.generation = m.generation;
        atomic_write(&self.dir.join(ANN_MANIFEST), self.manifest.render().as_bytes())?;
        Ok(self)
    }
}

/// Streams every row of store shard `shard` into memory (the
/// codebook's training set).
///
/// # Errors
///
/// Any [`StoreError`] from the shard reader.
pub fn read_shard_rows(store: &FeatureStore, shard: usize) -> Result<Vec<RowBuf>, StoreError> {
    let mut reader = store.reader(shard)?;
    let mut rows = Vec::new();
    let mut row = RowBuf::default();
    while reader.next_row(&mut row)? {
        rows.push(row.clone());
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic synthetic training rows: sparse, clustered by
    /// construction (row i leans on index block `i % 4`).
    fn synth_rows(n: usize, n_cols: usize, seed: u64) -> Vec<RowBuf> {
        (0..n)
            .map(|i| {
                let block = (i % 4) * (n_cols / 4);
                let mix = |j: u64| exec::mix_seed(seed, i as u64 * 100 + j);
                let nnz = 2 + (mix(0) % 3) as usize;
                let mut indices: Vec<u32> =
                    (0..nnz).map(|j| (block + (mix(j as u64 + 1) as usize % (n_cols / 4))) as u32).collect();
                indices.sort_unstable();
                indices.dedup();
                let values =
                    (0..indices.len()).map(|j| 1.0 + (mix(50 + j as u64) % 8) as f32).collect();
                RowBuf { athlete: i as u64, city: (i % 3) as u32, activity: 0, indices, values }
            })
            .collect()
    }

    #[test]
    fn training_is_thread_invariant_and_pure() {
        let rows = synth_rows(64, 32, 9);
        let a = Codebook::train(&rows, 32, 8, 42, &Executor::new(1));
        let b = Codebook::train(&rows, 32, 8, 42, &Executor::new(4));
        assert_eq!(a, b, "codebook must be bit-identical at any thread count");
        let c = Codebook::train(&rows, 32, 8, 43, &Executor::new(1));
        assert_ne!(a, c, "the seed must matter");
    }

    #[test]
    fn training_clamps_k_and_survives_degenerate_input() {
        let rows = synth_rows(3, 16, 1);
        let cb = Codebook::train(&rows, 16, 8, 7, &Executor::new(2));
        assert_eq!(cb.k(), 3, "k clamps to the usable row count");
        let empty =
            vec![RowBuf { athlete: 0, city: 0, activity: 0, indices: vec![], values: vec![] }];
        let cb = Codebook::train(&empty, 16, 4, 7, &Executor::new(1));
        assert_eq!(cb.k(), 1);
        assert_eq!(cb.assign(&[], &[]), 0);
    }

    #[test]
    fn top_centroids_order_is_total() {
        let rows = synth_rows(40, 32, 3);
        let cb = Codebook::train(&rows, 32, 6, 11, &Executor::new(2));
        let probe = &rows[5];
        let top = cb.top_centroids(&probe.indices, &probe.values, 4);
        assert_eq!(top.len(), 4);
        assert_eq!(top[0], cb.assign(&probe.indices, &probe.values));
        let again = cb.top_centroids(&probe.indices, &probe.values, 4);
        assert_eq!(top, again);
        assert!(cb.top_centroids(&probe.indices, &probe.values, 100).len() == cb.k());
    }

    #[test]
    fn ann_manifest_roundtrip_and_rejects() {
        let m = AnnManifest {
            config: 0xFEED,
            generation: 2,
            k: 64,
            seed: 7,
            n_cols: 512,
            shards: vec![
                AnnShardEntry { index: 0, file: ann_shard_file_name(0), entries: 9 },
                AnnShardEntry { index: 1, file: ann_shard_file_name(1), entries: 4 },
            ],
        };
        assert_eq!(AnnManifest::parse(&m.render()).expect("parses"), m);
        assert!(AnnManifest::parse("elevann v2\n").is_err());
        assert!(AnnManifest::parse("").is_err());
        let mut swapped = m.clone();
        swapped.shards.swap(0, 1);
        assert!(AnnManifest::parse(&swapped.render()).is_err(), "non-dense indices");
    }
}
