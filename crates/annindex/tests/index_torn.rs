//! IVF sidecar format contracts, in the `registry_torn.rs` /
//! `roundtrip_torn.rs` discipline:
//!
//! - **bit-exact round-trip** — posting lists and the codebook survive
//!   write → read → re-write byte-identically, and every posting entry
//!   addresses a row record that positioned reads decode;
//! - **the torn-write ladder** — a write killed at every record
//!   boundary (and mid-record) reads as `Truncated`; flipped bytes as
//!   `ChecksumMismatch`; foreign or future files as `BadMagic` /
//!   `UnsupportedVersion`;
//! - **determinism** — the codebook is bit-identical at 1 vs 4
//!   executor threads and depends only on shard-0 content, so an
//!   index built incrementally over appended shards equals one built
//!   from scratch.

use annindex::{
    ann_shard_file_name, read_postings, AnnIndex, Codebook, CODEBOOK_FILE, HEADER_LEN,
};
use exec::Executor;
use featstore::{
    shard_file_name, FeatureStore, RowBuf, ShardEntry, ShardWriter, StoreManifest,
};
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("elev-ann-torn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const N_COLS: u64 = 48;
const CONFIG: u64 = 0x5EED_CAFE;

fn synth_row(seed: u64, athlete: u64) -> RowBuf {
    let mix = |j: u64| exec::mix_seed(seed, athlete * 1_000 + j);
    let block = ((athlete % 4) * (N_COLS / 4)) as u32;
    let nnz = 2 + (mix(0) % 3) as usize;
    let mut indices: Vec<u32> =
        (0..nnz).map(|j| block + (mix(j as u64 + 1) % (N_COLS / 4)) as u32).collect();
    indices.sort_unstable();
    indices.dedup();
    let values = (0..indices.len()).map(|j| 1.0 + (mix(50 + j as u64) % 8) as f32).collect();
    RowBuf { athlete, city: (athlete % 3) as u32, activity: 0, indices, values }
}

/// Publishes a synthetic feature store: `shards` shards of
/// `per_shard` athletes, one row each.
fn publish_store(dir: &Path, seed: u64, shards: usize, per_shard: usize) -> FeatureStore {
    let mut entries = Vec::new();
    for s in 0..shards {
        let mut w = ShardWriter::create(dir, s, N_COLS, CONFIG).expect("create");
        for a in 0..per_shard {
            let row = synth_row(seed, (s * per_shard + a) as u64);
            w.append_row(row.athlete, row.city, row.activity, &row.indices, &row.values)
                .expect("append");
        }
        let meta = w.finish().expect("finish");
        entries.push(ShardEntry { index: s, file: meta.file, rows: meta.rows });
    }
    let manifest = StoreManifest {
        config: CONFIG,
        n_cols: N_COLS,
        shard_size: per_shard as u64,
        athletes: (shards * per_shard) as u64,
        generation: 1,
        shards: entries,
    };
    FeatureStore::publish_manifest(dir, &manifest).expect("publish");
    FeatureStore::open(dir).expect("open")
}

/// Walks a framed sidecar file's record boundaries by trusting only
/// the length prefixes (valid for a clean file).
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut cuts = vec![HEADER_LEN];
    let mut at = HEADER_LEN;
    while at < bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4 + len + 8;
        cuts.push(at);
    }
    assert_eq!(at, bytes.len(), "boundary walk must land exactly at EOF");
    cuts
}

#[test]
fn index_roundtrips_and_postings_address_real_rows() {
    let dir = TempDir::new("rt");
    let store = publish_store(&dir.0, 5, 2, 12);
    let exec = Executor::new(2);
    let idx = AnnIndex::build(&store, 4, 77, &exec).expect("build");
    assert_eq!(idx.manifest().shards.len(), 2);

    // Reopen from disk: manifest and codebook read back identically.
    let reopened = AnnIndex::open(&dir.0).expect("open");
    assert_eq!(reopened.manifest(), idx.manifest());

    let mut row = RowBuf::default();
    let mut seen = 0u64;
    for s in 0..2 {
        let lists = idx.postings(s).expect("postings");
        assert_eq!(lists.len(), idx.codebook().k());
        let mut reader = store.reader(s).expect("reader");
        for (c, list) in lists.iter().enumerate() {
            for e in list {
                let next = reader.read_row_at(e.offset, &mut row).expect("row at offset");
                assert!(next > e.offset);
                assert_eq!(row.athlete, e.athlete, "entry must address its own row");
                assert_eq!(row.city, e.city);
                assert_eq!(idx.codebook().assign(&row.indices, &row.values), c as u32);
                seen += 1;
            }
        }
    }
    assert_eq!(seen, 24, "every row lands in exactly one posting list");

    // Re-writing the decoded lists reproduces the sidecar byte for
    // byte (one encoding per index).
    let lists = idx.postings(0).expect("postings");
    let copy = dir.0.join("rewrite.ivf");
    annindex::write_postings(&copy, 0, CONFIG, &lists).expect("rewrite");
    let a = std::fs::read(dir.0.join(ann_shard_file_name(0))).expect("original");
    let b = std::fs::read(&copy).expect("rewritten");
    assert_eq!(a, b);
}

#[test]
fn torn_write_ladder_reads_truncated() {
    let dir = TempDir::new("ladder");
    let store = publish_store(&dir.0, 6, 1, 10);
    let idx = AnnIndex::build(&store, 4, 1, &Executor::new(1)).expect("build");
    let k = idx.codebook().k();

    for target in [dir.0.join(ann_shard_file_name(0)), dir.0.join(CODEBOOK_FILE)] {
        let original = std::fs::read(&target).expect("bytes");
        let boundaries = record_boundaries(&original);
        // The last boundary is EOF itself — the clean file, not a cut.
        let cuttable = &boundaries[..boundaries.len() - 1];
        let mut cuts = cuttable.to_vec();
        cuts.extend(cuttable.iter().map(|b| b + 2));
        cuts.extend([0, 1, HEADER_LEN / 2, original.len() - 1]);
        for cut in cuts {
            assert!(cut < original.len());
            std::fs::write(&target, &original[..cut]).expect("tear");
            let err = if target.ends_with(CODEBOOK_FILE) {
                Codebook::load(&target, CONFIG).expect_err("torn codebook must not load")
            } else {
                read_postings(&target, 0, k, CONFIG).expect_err("torn sidecar must not read")
            };
            assert_eq!(err.name(), "truncated", "cut at {cut}: got {err:?}");
        }
        std::fs::write(&target, &original).expect("restore");
    }
    assert!(AnnIndex::open(&dir.0).is_ok(), "restored index reads clean");
}

#[test]
fn flipped_bytes_read_checksum_mismatch() {
    let dir = TempDir::new("flip");
    let store = publish_store(&dir.0, 7, 1, 10);
    let idx = AnnIndex::build(&store, 4, 2, &Executor::new(1)).expect("build");
    let k = idx.codebook().k();

    let target = dir.0.join(ann_shard_file_name(0));
    let original = std::fs::read(&target).expect("bytes");
    let boundaries = record_boundaries(&original);
    let mut flips: Vec<usize> = vec![HEADER_LEN - 1];
    flips.extend(boundaries.windows(2).map(|w| (w[0] + w[1]) / 2));
    flips.push(original.len() - 1);
    for flip in flips {
        let mut bytes = original.clone();
        bytes[flip] ^= 0x10;
        std::fs::write(&target, &bytes).expect("flip");
        let err = read_postings(&target, 0, k, CONFIG).expect_err("corrupt sidecar");
        assert_eq!(err.name(), "checksum_mismatch", "flip at {flip}: got {err:?}");
    }
}

#[test]
fn foreign_and_future_files_classify_distinctly() {
    let dir = TempDir::new("classes");
    let store = publish_store(&dir.0, 8, 1, 6);
    let idx = AnnIndex::build(&store, 2, 3, &Executor::new(1)).expect("build");
    let k = idx.codebook().k();
    let target = dir.0.join(ann_shard_file_name(0));
    let original = std::fs::read(&target).expect("bytes");

    // A feature-store shard is not an IVF sidecar.
    std::fs::copy(dir.0.join(shard_file_name(0)), &target).expect("copy");
    assert_eq!(read_postings(&target, 0, k, CONFIG).unwrap_err().name(), "bad_magic");

    // A future container version with a consistent header checksum.
    let mut future = original.clone();
    future[8..12].copy_from_slice(&2u32.to_le_bytes());
    let fnv = featstore::fnv1a64(&future[..HEADER_LEN - 8]);
    future[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&fnv.to_le_bytes());
    std::fs::write(&target, &future).expect("write");
    assert_eq!(read_postings(&target, 0, k, CONFIG).unwrap_err().name(), "unsupported_version");

    // Deleted outright.
    std::fs::remove_file(&target).expect("rm");
    assert_eq!(read_postings(&target, 0, k, CONFIG).unwrap_err().name(), "io");

    // A sidecar for the wrong shard index cross-checks as malformed.
    std::fs::write(&target, &original).expect("restore");
    assert_eq!(read_postings(&target, 1, k, CONFIG).unwrap_err().name(), "malformed");
    assert_eq!(read_postings(&target, 0, k + 1, CONFIG).unwrap_err().name(), "malformed");
    assert_eq!(read_postings(&target, 0, k, CONFIG ^ 1).unwrap_err().name(), "malformed");
}

#[test]
fn codebook_is_thread_invariant_and_prefix_stable_across_stores() {
    let small = TempDir::new("prefix-small");
    let large = TempDir::new("prefix-large");
    // Same shard-0 content; the large store has three more shards.
    let store_small = publish_store(&small.0, 11, 1, 16);
    let store_large = publish_store(&large.0, 11, 4, 16);

    AnnIndex::build(&store_small, 4, 9, &Executor::new(1)).expect("build small");
    AnnIndex::build(&store_large, 4, 9, &Executor::new(4)).expect("build large");

    // Thread count and trailing shards must not leak into the
    // codebook: the two files are byte-identical.
    let a = std::fs::read(small.0.join(CODEBOOK_FILE)).expect("small codebook");
    let b = std::fs::read(large.0.join(CODEBOOK_FILE)).expect("large codebook");
    assert_eq!(a, b, "codebook must depend only on shard-0 content");

    // And shard-0 sidecars agree too.
    let a = std::fs::read(small.0.join(ann_shard_file_name(0))).expect("small sidecar");
    let b = std::fs::read(large.0.join(ann_shard_file_name(0))).expect("large sidecar");
    assert_eq!(a, b);
}

#[test]
fn ensure_reuses_extends_and_rebuilds() {
    let inc = TempDir::new("inc");
    let full = TempDir::new("full");
    let exec = Executor::new(2);

    // Incremental path: 2 shards, index, append 2 more, ensure.
    let mut store = publish_store(&inc.0, 13, 2, 8);
    let (_, reused) = AnnIndex::ensure(&store, 4, 21, &exec).expect("build");
    assert!(!reused);
    let (_, reused) = AnnIndex::ensure(&store, 4, 21, &exec).expect("reuse");
    assert!(reused, "unchanged store must reuse the index as-is");
    let codebook_before = std::fs::read(inc.0.join(CODEBOOK_FILE)).expect("codebook");

    let mut metas = Vec::new();
    for s in 2..4 {
        let mut w = ShardWriter::create(&inc.0, s, N_COLS, CONFIG).expect("create");
        for a in 0..8 {
            let row = synth_row(13, (s * 8 + a) as u64);
            w.append_row(row.athlete, row.city, row.activity, &row.indices, &row.values)
                .expect("append");
        }
        metas.push(w.finish().expect("finish"));
    }
    store.append_shards(CONFIG, 32, &metas).expect("append");
    let (idx, reused) = AnnIndex::ensure(&store, 4, 21, &exec).expect("extend");
    assert!(!reused);
    assert_eq!(idx.manifest().shards.len(), 4);
    assert_eq!(idx.manifest().generation, 2, "index tracks the store generation");
    let codebook_after = std::fs::read(inc.0.join(CODEBOOK_FILE)).expect("codebook");
    assert_eq!(codebook_before, codebook_after, "extension freezes the codebook");

    // Build-all-at-once produces byte-identical sidecars.
    let store_full = publish_store(&full.0, 13, 4, 8);
    AnnIndex::build(&store_full, 4, 21, &exec).expect("build full");
    for s in 0..4 {
        let a = std::fs::read(inc.0.join(ann_shard_file_name(s))).expect("inc sidecar");
        let b = std::fs::read(full.0.join(ann_shard_file_name(s))).expect("full sidecar");
        assert_eq!(a, b, "shard {s} sidecar must not depend on the build path");
    }

    // A different seed is incompatible: ensure rebuilds from scratch.
    let (idx2, reused) = AnnIndex::ensure(&store, 4, 22, &exec).expect("rebuild");
    assert!(!reused);
    assert_eq!(idx2.manifest().seed, 22);
}
