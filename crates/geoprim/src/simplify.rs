//! Douglas–Peucker trajectory simplification.
//!
//! Fitness platforms simplify recorded tracks before rendering and
//! before polyline encoding (a raw 1 Hz recording is ~10× larger than
//! its visual information). The mining side of the paper therefore sees
//! *simplified* polylines; this module provides the standard
//! Douglas–Peucker algorithm so downstream users can reproduce that
//! wire-format reality, plus the auxiliary path measures (length,
//! bearing) route tooling needs.

use crate::{LatLon, LocalProjection};

/// Total path length in metres (sum of haversine leg lengths).
pub fn path_length_m(path: &[LatLon]) -> f64 {
    path.windows(2).map(|w| w[0].haversine_m(w[1])).sum()
}

/// Initial bearing from `a` to `b` in radians, east of north, in
/// `(-π, π]`. Returns 0 for coincident points.
pub fn bearing_rad(a: LatLon, b: LatLon) -> f64 {
    let proj = LocalProjection::new(a);
    let (x, y) = proj.to_meters(b);
    if x == 0.0 && y == 0.0 {
        0.0
    } else {
        x.atan2(y)
    }
}

/// Simplifies a trajectory with Douglas–Peucker at the given tolerance
/// in metres.
///
/// Endpoints are always kept; any interior point farther than
/// `tolerance_m` from the chord of its segment survives. Paths with
/// fewer than three points are returned unchanged.
///
/// # Panics
///
/// Panics if `tolerance_m` is negative or not finite.
pub fn douglas_peucker(path: &[LatLon], tolerance_m: f64) -> Vec<LatLon> {
    assert!(
        tolerance_m.is_finite() && tolerance_m >= 0.0,
        "tolerance must be non-negative"
    );
    if path.len() < 3 {
        return path.to_vec();
    }
    // Work in a local metre frame anchored at the path start.
    let proj = LocalProjection::new(path[0]);
    let pts: Vec<(f64, f64)> = path.iter().map(|p| proj.to_meters(*p)).collect();
    let mut keep = vec![false; path.len()];
    keep[0] = true;
    keep[path.len() - 1] = true;
    let mut stack = vec![(0usize, path.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut best, mut best_d) = (lo + 1, -1.0f64);
        for i in (lo + 1)..hi {
            let d = point_segment_distance(pts[i], pts[lo], pts[hi]);
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        if best_d > tolerance_m {
            keep[best] = true;
            stack.push((lo, best));
            stack.push((best, hi));
        }
    }
    path.iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect()
}

/// Euclidean distance from `p` to segment `a..b` in the local frame.
fn point_segment_distance(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (px, py) = (p.0 - a.0, p.1 - a.1);
    let (bx, by) = (b.0 - a.0, b.1 - a.1);
    let len2 = bx * bx + by * by;
    let t = if len2 > 0.0 { ((px * bx + py * by) / len2).clamp(0.0, 1.0) } else { 0.0 };
    let (dx, dy) = (px - t * bx, py - t * by);
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<LatLon> {
        (0..n).map(|i| LatLon::new(38.9, -77.0).offset_m(i as f64 * 10.0, 0.0)).collect()
    }

    #[test]
    fn collinear_points_collapse_to_endpoints() {
        let path = line(50);
        let s = douglas_peucker(&path, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], path[0]);
        assert_eq!(s[1], path[49]);
    }

    #[test]
    fn corners_are_preserved() {
        // An L-shape: the corner is essential at any tolerance below
        // its offset from the chord.
        let mut path = line(20);
        let corner = *path.last().unwrap();
        for i in 1..20 {
            path.push(corner.offset_m(0.0, i as f64 * 10.0));
        }
        let s = douglas_peucker(&path, 5.0);
        assert!(s.len() >= 3);
        assert!(s.iter().any(|p| p.degree_distance(corner) < 1e-9));
    }

    #[test]
    fn zero_tolerance_keeps_noncollinear_points() {
        let path = vec![
            LatLon::new(0.0, 0.0),
            LatLon::new(0.0001, 0.00005),
            LatLon::new(0.0, 0.0001),
        ];
        let s = douglas_peucker(&path, 0.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn simplified_path_deviates_at_most_tolerance() {
        // Wiggly path; every dropped point stays within tolerance of
        // the simplified chord sequence.
        let path: Vec<LatLon> = (0..200)
            .map(|i| {
                LatLon::new(38.9, -77.0)
                    .offset_m(i as f64 * 10.0, (i as f64 * 0.4).sin() * 15.0)
            })
            .collect();
        let tol = 8.0;
        let s = douglas_peucker(&path, tol);
        assert!(s.len() < path.len());
        let proj = LocalProjection::new(path[0]);
        let spts: Vec<(f64, f64)> = s.iter().map(|p| proj.to_meters(*p)).collect();
        for p in &path {
            let q = proj.to_meters(*p);
            let d = spts
                .windows(2)
                .map(|w| point_segment_distance(q, w[0], w[1]))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= tol + 0.5, "deviation {d}");
        }
    }

    #[test]
    fn short_paths_are_unchanged() {
        for n in 0..3 {
            let path = line(n);
            assert_eq!(douglas_peucker(&path, 10.0), path);
        }
    }

    #[test]
    fn path_length_of_straight_line() {
        let l = path_length_m(&line(11));
        assert!((l - 100.0).abs() < 0.5, "length {l}");
    }

    #[test]
    fn bearings_point_the_right_way() {
        let a = LatLon::new(38.9, -77.0);
        assert!((bearing_rad(a, a.offset_m(0.0, 100.0)) - 0.0).abs() < 1e-6); // north
        assert!(
            (bearing_rad(a, a.offset_m(100.0, 0.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-6
        ); // east
        assert_eq!(bearing_rad(a, a), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_tolerance() {
        douglas_peucker(&line(5), -1.0);
    }
}
