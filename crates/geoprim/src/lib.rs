//! Geographic primitives for the elevation-privacy reproduction.
//!
//! This crate provides the low-level geometry used throughout the attack
//! pipeline of *Understanding the Potential Risks of Sharing Elevation
//! Information on Fitness Applications* (ICDCS 2020):
//!
//! - [`LatLon`] coordinates with haversine distances and a local
//!   equirectangular projection to metres,
//! - [`BoundingBox`] "tight rectangles" that encapsulate a route
//!   trajectory (paper Fig. 3) with intersection-over-union overlap
//!   ratios (used to measure the 35% route overlap of the user-specific
//!   dataset),
//! - the Google encoded [`polyline`] codec (route segments are mined as
//!   polyline paths, paper Fig. 4),
//! - [`region`] clustering that assigns trajectories to labelled regions
//!   by rectangle-centre distance, exactly as the paper labels the
//!   user-specific dataset.
//!
//! # Examples
//!
//! ```
//! use geoprim::{BoundingBox, LatLon};
//!
//! let route = [
//!     LatLon::new(38.889, -77.050),
//!     LatLon::new(38.897, -77.036),
//!     LatLon::new(38.889, -77.009),
//! ];
//! let rect = BoundingBox::tight(route.iter().copied()).unwrap();
//! assert!(rect.contains(LatLon::new(38.890, -77.040)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latlon;
mod rect;
pub mod polyline;
pub mod region;
pub mod simplify;

pub use latlon::{LatLon, LocalProjection, EARTH_RADIUS_M};
pub use rect::{average_pairwise_iou, BoundingBox};
pub use region::{RegionId, RegionIndex};
pub use simplify::{bearing_rad, douglas_peucker, path_length_m};

/// Errors produced by geometric operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeoError {
    /// An operation that requires at least one point received none.
    EmptyTrajectory,
    /// A coordinate was outside the valid latitude/longitude domain.
    InvalidCoordinate {
        /// The offending latitude in degrees.
        lat: String,
        /// The offending longitude in degrees.
        lon: String,
    },
    /// An encoded polyline contained a truncated or malformed chunk.
    MalformedPolyline {
        /// Byte offset at which decoding failed.
        offset: usize,
    },
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::EmptyTrajectory => write!(f, "trajectory contains no points"),
            GeoError::InvalidCoordinate { lat, lon } => {
                write!(f, "coordinate ({lat}, {lon}) is outside the valid domain")
            }
            GeoError::MalformedPolyline { offset } => {
                write!(f, "malformed polyline at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for GeoError {}
