//! Google encoded polyline codec.
//!
//! The paper's mining pipeline receives route segments as "geolocation
//! polyline paths" (Fig. 4) — the de-facto wire format is Google's
//! [encoded polyline algorithm]. This module implements the codec from
//! scratch: 1e-5 degree quantization, delta encoding, zig-zag signing,
//! and base-63 ASCII chunking.
//!
//! [encoded polyline algorithm]:
//!     https://developers.google.com/maps/documentation/utilities/polylinealgorithm
//!
//! # Examples
//!
//! ```
//! use geoprim::{polyline, LatLon};
//!
//! let path = vec![
//!     LatLon::new(38.5, -120.2),
//!     LatLon::new(40.7, -120.95),
//!     LatLon::new(43.252, -126.453),
//! ];
//! let encoded = polyline::encode(&path);
//! assert_eq!(encoded, "_p~iF~ps|U_ulLnnqC_mqNvxq`@");
//! let decoded = polyline::decode(&encoded)?;
//! assert_eq!(decoded.len(), 3);
//! # Ok::<(), geoprim::GeoError>(())
//! ```

use crate::{GeoError, LatLon};

const PRECISION: f64 = 1e5;

/// Encodes a sequence of coordinates as a polyline string.
///
/// Coordinates are quantized to 5 decimal places (~1.1 m), so
/// `decode(encode(p))` equals `p` only up to that quantization.
pub fn encode(points: &[LatLon]) -> String {
    let mut out = String::with_capacity(points.len() * 10);
    let mut prev_lat = 0i64;
    let mut prev_lon = 0i64;
    for p in points {
        let lat = (p.lat * PRECISION).round() as i64;
        let lon = (p.lon * PRECISION).round() as i64;
        encode_value(lat - prev_lat, &mut out);
        encode_value(lon - prev_lon, &mut out);
        prev_lat = lat;
        prev_lon = lon;
    }
    out
}

fn encode_value(value: i64, out: &mut String) {
    // Zig-zag: left-shift and invert negatives so the sign lives in bit 0.
    let mut v = (value << 1) as u64;
    if value < 0 {
        v = !v;
    }
    while v >= 0x20 {
        out.push((((v & 0x1f) as u8 | 0x20) + 63) as char);
        v >>= 5;
    }
    out.push((v as u8 + 63) as char);
}

/// Decodes a polyline string into coordinates.
///
/// # Errors
///
/// Returns [`GeoError::MalformedPolyline`] when the string ends in the
/// middle of a chunk sequence, contains bytes outside the valid alphabet
/// (`'?'..='~'`), or encodes only half of a coordinate pair.
pub fn decode(encoded: &str) -> Result<Vec<LatLon>, GeoError> {
    let bytes = encoded.as_bytes();
    let mut points = Vec::new();
    let mut idx = 0usize;
    let mut lat = 0i64;
    let mut lon = 0i64;
    while idx < bytes.len() {
        let (dlat, next) = decode_value(bytes, idx)?;
        if next >= bytes.len() {
            // dlat consumed everything: a lone half-pair is malformed.
            return Err(GeoError::MalformedPolyline { offset: next });
        }
        let (dlon, next2) = decode_value(bytes, next)?;
        lat += dlat;
        lon += dlon;
        points.push(LatLon::new(lat as f64 / PRECISION, lon as f64 / PRECISION));
        idx = next2;
    }
    Ok(points)
}

fn decode_value(bytes: &[u8], mut idx: usize) -> Result<(i64, usize), GeoError> {
    let start = idx;
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(idx) else {
            return Err(GeoError::MalformedPolyline { offset: start });
        };
        if !(63..=126).contains(&b) {
            return Err(GeoError::MalformedPolyline { offset: idx });
        }
        let chunk = (b - 63) as u64;
        result |= (chunk & 0x1f) << shift;
        idx += 1;
        if chunk & 0x20 == 0 {
            break;
        }
        shift += 5;
        if shift > 60 {
            return Err(GeoError::MalformedPolyline { offset: idx });
        }
    }
    // Undo zig-zag.
    let value = if result & 1 != 0 {
        !(result >> 1) as i64
    } else {
        (result >> 1) as i64
    };
    Ok((value, idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_reference_vector() {
        // The worked example from Google's documentation.
        let pts = vec![
            LatLon::new(38.5, -120.2),
            LatLon::new(40.7, -120.95),
            LatLon::new(43.252, -126.453),
        ];
        assert_eq!(encode(&pts), "_p~iF~ps|U_ulLnnqC_mqNvxq`@");
    }

    #[test]
    fn roundtrip_within_quantization() {
        let pts = vec![
            LatLon::new(40.712812, -74.006012),
            LatLon::new(40.713003, -74.005488),
            LatLon::new(40.714999, -74.002340),
        ];
        let decoded = decode(&encode(&pts)).unwrap();
        assert_eq!(decoded.len(), pts.len());
        for (a, b) in pts.iter().zip(&decoded) {
            assert!((a.lat - b.lat).abs() <= 0.5 / PRECISION + 1e-12);
            assert!((a.lon - b.lon).abs() <= 0.5 / PRECISION + 1e-12);
        }
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), vec![]);
    }

    #[test]
    fn decode_rejects_truncated_chunk() {
        // '_' (0x5f) has the continuation bit set, so a lone '_' is truncated.
        assert!(matches!(
            decode("_"),
            Err(GeoError::MalformedPolyline { .. })
        ));
    }

    #[test]
    fn decode_rejects_half_pair() {
        // A single complete value (latitude) with no longitude.
        let mut s = String::new();
        encode_value(12345, &mut s);
        assert!(matches!(
            decode(&s),
            Err(GeoError::MalformedPolyline { .. })
        ));
    }

    #[test]
    fn decode_rejects_invalid_alphabet() {
        assert!(matches!(
            decode("ab\u{7f}cd"),
            Err(GeoError::MalformedPolyline { .. })
        ));
        assert!(matches!(
            decode("ab cd"),
            Err(GeoError::MalformedPolyline { .. })
        ));
    }

    #[test]
    fn negative_deltas_roundtrip() {
        let pts = vec![
            LatLon::new(-33.86, 151.20),
            LatLon::new(-33.87, 151.19),
            LatLon::new(-33.90, 151.15),
        ];
        let decoded = decode(&encode(&pts)).unwrap();
        for (a, b) in pts.iter().zip(&decoded) {
            assert!((a.lat - b.lat).abs() < 1e-5);
            assert!((a.lon - b.lon).abs() < 1e-5);
        }
    }
}
