//! Tight rectangles encapsulating trajectories (paper Fig. 3).

use crate::{GeoError, LatLon};
use serde::{Deserialize, Serialize};

/// An axis-aligned latitude/longitude rectangle.
///
/// The paper encapsulates every sample trajectory in a *tight rectangle*
/// whose north-east and south-west corners come from the trajectory's
/// coordinate extremes (Fig. 3). Rectangles drive two mechanisms:
///
/// 1. **Region labelling** of the user-specific dataset: a trajectory is
///    assigned to an existing region if the distance between rectangle
///    centres is below a threshold (see [`crate::RegionIndex`]).
/// 2. **Overlap measurement**: the average intersection-over-union of
///    same-class rectangles quantifies route repetition (the paper
///    reports 35% for the user-specific dataset).
///
/// # Examples
///
/// ```
/// use geoprim::{BoundingBox, LatLon};
///
/// let a = BoundingBox::new(LatLon::new(0.0, 0.0), LatLon::new(2.0, 2.0));
/// let b = BoundingBox::new(LatLon::new(1.0, 1.0), LatLon::new(3.0, 3.0));
/// assert!((a.iou(&b) - 1.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    south_west: LatLon,
    north_east: LatLon,
}

impl BoundingBox {
    /// Creates a rectangle from its south-west and north-east corners.
    ///
    /// Corners are normalized: if the arguments are swapped on either
    /// axis, they are reordered so the rectangle is well-formed.
    pub fn new(a: LatLon, b: LatLon) -> Self {
        let south_west = LatLon::new(a.lat.min(b.lat), a.lon.min(b.lon));
        let north_east = LatLon::new(a.lat.max(b.lat), a.lon.max(b.lon));
        Self { south_west, north_east }
    }

    /// Computes the tight rectangle around a trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyTrajectory`] for an empty iterator.
    pub fn tight<I: IntoIterator<Item = LatLon>>(points: I) -> Result<Self, GeoError> {
        let mut iter = points.into_iter();
        let first = iter.next().ok_or(GeoError::EmptyTrajectory)?;
        let (mut min_lat, mut max_lat) = (first.lat, first.lat);
        let (mut min_lon, mut max_lon) = (first.lon, first.lon);
        for p in iter {
            min_lat = min_lat.min(p.lat);
            max_lat = max_lat.max(p.lat);
            min_lon = min_lon.min(p.lon);
            max_lon = max_lon.max(p.lon);
        }
        Ok(Self {
            south_west: LatLon::new(min_lat, min_lon),
            north_east: LatLon::new(max_lat, max_lon),
        })
    }

    /// The south-west (bottom-left) corner.
    pub fn south_west(&self) -> LatLon {
        self.south_west
    }

    /// The north-east (top-right) corner.
    pub fn north_east(&self) -> LatLon {
        self.north_east
    }

    /// The rectangle centre in degree space.
    pub fn center(&self) -> LatLon {
        self.south_west.midpoint(self.north_east)
    }

    /// Latitude extent in degrees (always non-negative).
    pub fn lat_span(&self) -> f64 {
        self.north_east.lat - self.south_west.lat
    }

    /// Longitude extent in degrees (always non-negative).
    pub fn lon_span(&self) -> f64 {
        self.north_east.lon - self.south_west.lon
    }

    /// Area in squared degrees. Degenerate rectangles have zero area.
    pub fn area_deg2(&self) -> f64 {
        self.lat_span() * self.lon_span()
    }

    /// Whether `p` lies inside (or on the border of) the rectangle.
    pub fn contains(&self, p: LatLon) -> bool {
        p.lat >= self.south_west.lat
            && p.lat <= self.north_east.lat
            && p.lon >= self.south_west.lon
            && p.lon <= self.north_east.lon
    }

    /// Whether `other` is entirely inside this rectangle.
    ///
    /// The paper's `EXPLORESEGMENTS()` only returns segments *encapsulated*
    /// by the query boundary; the mining simulator uses this predicate.
    pub fn encloses(&self, other: &BoundingBox) -> bool {
        self.contains(other.south_west) && self.contains(other.north_east)
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let sw = LatLon::new(
            self.south_west.lat.max(other.south_west.lat),
            self.south_west.lon.max(other.south_west.lon),
        );
        let ne = LatLon::new(
            self.north_east.lat.min(other.north_east.lat),
            self.north_east.lon.min(other.north_east.lon),
        );
        if sw.lat <= ne.lat && sw.lon <= ne.lon {
            Some(BoundingBox { south_west: sw, north_east: ne })
        } else {
            None
        }
    }

    /// Intersection-over-union of two rectangles, in `[0, 1]`.
    ///
    /// Returns 0 for disjoint rectangles and for pairs of degenerate
    /// (zero-area) rectangles, and 1 only for identical non-degenerate
    /// rectangles.
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let inter = match self.intersection(other) {
            Some(r) => r.area_deg2(),
            None => return 0.0,
        };
        let union = self.area_deg2() + other.area_deg2() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Expands the rectangle by `margin` degrees on every side.
    pub fn expanded(&self, margin: f64) -> BoundingBox {
        BoundingBox::new(
            LatLon::new(self.south_west.lat - margin, self.south_west.lon - margin),
            LatLon::new(self.north_east.lat + margin, self.north_east.lon + margin),
        )
    }

    /// Splits the rectangle into a `rows x cols` grid of sub-rectangles,
    /// row-major from the south-west corner.
    ///
    /// This is the grid decomposition of the paper's mining pipeline
    /// (Fig. 4): a large city boundary is divided into smaller regions
    /// `r_i`, each queried independently.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn grid(&self, rows: usize, cols: usize) -> Vec<BoundingBox> {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        let dlat = self.lat_span() / rows as f64;
        let dlon = self.lon_span() / cols as f64;
        let mut cells = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let sw = LatLon::new(
                    self.south_west.lat + dlat * r as f64,
                    self.south_west.lon + dlon * c as f64,
                );
                let ne = LatLon::new(sw.lat + dlat, sw.lon + dlon);
                cells.push(BoundingBox { south_west: sw, north_east: ne });
            }
        }
        cells
    }
}

impl std::fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.south_west, self.north_east)
    }
}

/// Average pairwise IoU among a set of rectangles.
///
/// The paper reports the *average overlap ratio* of same-class routes
/// computed as "the intersection over union of the tight rectangles
/// encapsulating the sample routes", averaged over each sample pair with
/// the same class label. Returns 0 for fewer than two rectangles.
pub fn average_pairwise_iou(rects: &[BoundingBox]) -> f64 {
    if rects.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            sum += rects[i].iou(&rects[j]);
            n += 1;
        }
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(sw: (f64, f64), ne: (f64, f64)) -> BoundingBox {
        BoundingBox::new(LatLon::new(sw.0, sw.1), LatLon::new(ne.0, ne.1))
    }

    #[test]
    fn tight_rejects_empty() {
        assert_eq!(
            BoundingBox::tight(std::iter::empty()),
            Err(GeoError::EmptyTrajectory)
        );
    }

    #[test]
    fn tight_matches_extremes() {
        let pts = [
            LatLon::new(1.0, 5.0),
            LatLon::new(-2.0, 7.0),
            LatLon::new(0.5, 4.0),
        ];
        let r = BoundingBox::tight(pts).unwrap();
        assert_eq!(r.south_west(), LatLon::new(-2.0, 4.0));
        assert_eq!(r.north_east(), LatLon::new(1.0, 7.0));
    }

    #[test]
    fn new_normalizes_corner_order() {
        let r = bb((5.0, 9.0), (1.0, 2.0));
        assert_eq!(r.south_west(), LatLon::new(1.0, 2.0));
        assert_eq!(r.north_east(), LatLon::new(5.0, 9.0));
    }

    #[test]
    fn iou_identical_is_one() {
        let r = bb((0.0, 0.0), (1.0, 1.0));
        assert!((r.iou(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = bb((0.0, 0.0), (1.0, 1.0));
        let b = bb((2.0, 2.0), (3.0, 3.0));
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_degenerate_is_zero() {
        let a = bb((0.0, 0.0), (0.0, 0.0));
        assert_eq!(a.iou(&a), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Two unit squares sharing half their area: inter 0.5, union 1.5.
        let a = bb((0.0, 0.0), (1.0, 1.0));
        let b = bb((0.0, 0.5), (1.0, 1.5));
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn encloses_requires_full_containment() {
        let outer = bb((0.0, 0.0), (10.0, 10.0));
        let inner = bb((1.0, 1.0), (2.0, 2.0));
        let straddle = bb((9.0, 9.0), (11.0, 11.0));
        assert!(outer.encloses(&inner));
        assert!(!outer.encloses(&straddle));
        assert!(!inner.encloses(&outer));
    }

    #[test]
    fn grid_partitions_area() {
        let r = bb((0.0, 0.0), (4.0, 6.0));
        let cells = r.grid(2, 3);
        assert_eq!(cells.len(), 6);
        let total: f64 = cells.iter().map(|c| c.area_deg2()).sum();
        assert!((total - r.area_deg2()).abs() < 1e-9);
        // Cells are pairwise non-overlapping (zero-area intersections).
        for i in 0..cells.len() {
            for j in (i + 1)..cells.len() {
                if let Some(inter) = cells[i].intersection(&cells[j]) {
                    assert!(inter.area_deg2() < 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be nonzero")]
    fn grid_panics_on_zero() {
        bb((0.0, 0.0), (1.0, 1.0)).grid(0, 3);
    }

    #[test]
    fn average_pairwise_iou_basics() {
        assert_eq!(average_pairwise_iou(&[]), 0.0);
        let a = bb((0.0, 0.0), (1.0, 1.0));
        assert_eq!(average_pairwise_iou(&[a]), 0.0);
        assert!((average_pairwise_iou(&[a, a]) - 1.0).abs() < 1e-12);
        let b = bb((5.0, 5.0), (6.0, 6.0));
        // Pairs: (a,a)=1, (a,b)=0, (a,b)=0 -> 1/3.
        assert!((average_pairwise_iou(&[a, a, b]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn expanded_grows_every_side() {
        let r = bb((0.0, 0.0), (1.0, 1.0)).expanded(0.5);
        assert_eq!(r.south_west(), LatLon::new(-0.5, -0.5));
        assert_eq!(r.north_east(), LatLon::new(1.5, 1.5));
    }
}
