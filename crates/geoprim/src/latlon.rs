//! Coordinates, distances, and the local metre projection.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres, as used by the haversine formula.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A WGS-84 latitude/longitude pair in degrees.
///
/// The type is a plain value object: construction does not validate the
/// domain (use [`LatLon::validated`] when ingesting untrusted data, e.g.
/// GPX files), and all arithmetic helpers treat the pair as immutable.
///
/// # Examples
///
/// ```
/// use geoprim::LatLon;
///
/// let white_house = LatLon::new(38.8977, -77.0365);
/// let capitol = LatLon::new(38.8899, -77.0091);
/// let d = white_house.haversine_m(capitol);
/// assert!((d - 2560.0).abs() < 100.0, "distance was {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate from degrees without validating the domain.
    pub fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Creates a coordinate, returning an error outside the valid domain.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GeoError::InvalidCoordinate`] when `lat` is outside
    /// `[-90, 90]`, `lon` is outside `[-180, 180]`, or either is not finite.
    pub fn validated(lat: f64, lon: f64) -> Result<Self, crate::GeoError> {
        let ok = lat.is_finite() && lon.is_finite() && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon);
        if ok {
            Ok(Self { lat, lon })
        } else {
            Err(crate::GeoError::InvalidCoordinate {
                lat: format!("{lat}"),
                lon: format!("{lon}"),
            })
        }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    pub fn haversine_m(self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2)
            + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Euclidean distance in *degrees* between two coordinates.
    ///
    /// The paper's region-labelling step compares rectangle centres with a
    /// "predetermined threshold" in coordinate space; this is that metric.
    pub fn degree_distance(self, other: LatLon) -> f64 {
        let dlat = self.lat - other.lat;
        let dlon = self.lon - other.lon;
        (dlat * dlat + dlon * dlon).sqrt()
    }

    /// Returns the midpoint (arithmetic mean in degree space).
    pub fn midpoint(self, other: LatLon) -> LatLon {
        LatLon::new((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)
    }

    /// Offsets this coordinate by metres east (`dx`) and north (`dy`).
    ///
    /// Uses a local equirectangular approximation, accurate over the
    /// route-sized distances (kilometres) this library works with.
    pub fn offset_m(self, dx_east: f64, dy_north: f64) -> LatLon {
        let dlat = dy_north / EARTH_RADIUS_M;
        let dlon = dx_east / (EARTH_RADIUS_M * self.lat.to_radians().cos());
        LatLon::new(self.lat + dlat.to_degrees(), self.lon + dlon.to_degrees())
    }
}

impl std::fmt::Display for LatLon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

impl From<(f64, f64)> for LatLon {
    fn from((lat, lon): (f64, f64)) -> Self {
        LatLon::new(lat, lon)
    }
}

/// A local equirectangular projection anchored at an origin coordinate.
///
/// Maps [`LatLon`] to `(x east, y north)` metres relative to the origin and
/// back. Route generators work in metres and project back to coordinates.
///
/// # Examples
///
/// ```
/// use geoprim::{LatLon, LocalProjection};
///
/// let proj = LocalProjection::new(LatLon::new(40.0, -74.0));
/// let p = proj.to_meters(LatLon::new(40.001, -74.0));
/// assert!((p.1 - 111.0).abs() < 1.0); // ~111 m per millidegree of latitude
/// let roundtrip = proj.to_latlon(p.0, p.1);
/// assert!(roundtrip.degree_distance(LatLon::new(40.001, -74.0)) < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    origin: LatLon,
    cos_lat: f64,
}

impl LocalProjection {
    /// Creates a projection anchored at `origin`.
    pub fn new(origin: LatLon) -> Self {
        Self { origin, cos_lat: origin.lat.to_radians().cos() }
    }

    /// The anchor coordinate of this projection.
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects a coordinate to `(x east, y north)` metres from the origin.
    pub fn to_meters(&self, p: LatLon) -> (f64, f64) {
        let y = (p.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        let x = (p.lon - self.origin.lon).to_radians() * EARTH_RADIUS_M * self.cos_lat;
        (x, y)
    }

    /// Inverse of [`LocalProjection::to_meters`].
    pub fn to_latlon(&self, x_east: f64, y_north: f64) -> LatLon {
        let lat = self.origin.lat + (y_north / EARTH_RADIUS_M).to_degrees();
        let lon = self.origin.lon + (x_east / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        LatLon::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_identical_points() {
        let p = LatLon::new(28.5, -81.4);
        assert_eq!(p.haversine_m(p), 0.0);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = LatLon::new(40.7, -74.0);
        let b = LatLon::new(34.05, -118.24);
        assert!((a.haversine_m(b) - b.haversine_m(a)).abs() < 1e-6);
    }

    #[test]
    fn haversine_nyc_to_la_is_about_3940_km() {
        let nyc = LatLon::new(40.7128, -74.0060);
        let la = LatLon::new(34.0522, -118.2437);
        let d = nyc.haversine_m(la);
        assert!((d - 3_935_000.0).abs() < 20_000.0, "distance was {d}");
    }

    #[test]
    fn validated_rejects_out_of_domain() {
        assert!(LatLon::validated(91.0, 0.0).is_err());
        assert!(LatLon::validated(0.0, 181.0).is_err());
        assert!(LatLon::validated(f64::NAN, 0.0).is_err());
        assert!(LatLon::validated(45.0, -120.0).is_ok());
    }

    #[test]
    fn offset_m_moves_north_and_east() {
        let p = LatLon::new(40.0, -74.0);
        let q = p.offset_m(1000.0, 2000.0);
        assert!(q.lat > p.lat);
        assert!(q.lon > p.lon);
        let d = p.haversine_m(q);
        let expect = (1000.0f64.powi(2) + 2000.0f64.powi(2)).sqrt();
        assert!((d - expect).abs() < 5.0, "distance was {d}, expected {expect}");
    }

    #[test]
    fn projection_roundtrip() {
        let proj = LocalProjection::new(LatLon::new(37.77, -122.42));
        let p = LatLon::new(37.79, -122.40);
        let (x, y) = proj.to_meters(p);
        let back = proj.to_latlon(x, y);
        assert!(back.degree_distance(p) < 1e-12);
    }

    #[test]
    fn degree_distance_matches_pythagoras() {
        let a = LatLon::new(1.0, 2.0);
        let b = LatLon::new(4.0, 6.0);
        assert!((a.degree_distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = LatLon::new(10.0, 20.0);
        let b = LatLon::new(20.0, 40.0);
        let m = a.midpoint(b);
        assert_eq!(m, LatLon::new(15.0, 30.0));
    }
}
