//! Region clustering for user-specific dataset labelling.
//!
//! The paper labels each activity of the user-specific dataset by
//! encapsulating its trajectory in a tight rectangle and comparing the
//! rectangle centre against previously created regions: "If the Euclidean
//! distance between the center of the rectangle and the center of the
//! existing region does not exceed a predetermined threshold, the
//! rectangle and its corresponding sample are labeled with a unique
//! identity of the region. If there is no region that includes the
//! trajectory, a new region is created."
//!
//! [`RegionIndex`] implements exactly that incremental online clustering.

use crate::{BoundingBox, LatLon};
use serde::{Deserialize, Serialize};

/// A unique identity assigned to a discovered region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region-{}", self.0)
    }
}

/// A discovered region: the first rectangle that seeded it plus running
/// statistics over the rectangles assigned to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    id: RegionId,
    center: LatLon,
    members: usize,
    hull: BoundingBox,
}

impl Region {
    /// The region's unique identity.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The centre of the seeding rectangle (regions do not drift; the
    /// paper compares against "the center of the existing region").
    pub fn center(&self) -> LatLon {
        self.center
    }

    /// How many rectangles have been assigned to this region.
    pub fn members(&self) -> usize {
        self.members
    }

    /// The union hull of all member rectangles.
    pub fn hull(&self) -> BoundingBox {
        self.hull
    }
}

/// Online region clustering by rectangle-centre distance.
///
/// # Examples
///
/// ```
/// use geoprim::{BoundingBox, LatLon, RegionIndex};
///
/// let mut index = RegionIndex::new(0.5);
/// let dc = BoundingBox::new(LatLon::new(38.8, -77.1), LatLon::new(38.9, -77.0));
/// let orlando = BoundingBox::new(LatLon::new(28.4, -81.5), LatLon::new(28.6, -81.3));
/// let a = index.assign(&dc);
/// let b = index.assign(&orlando);
/// let c = index.assign(&dc);
/// assert_ne!(a, b);
/// assert_eq!(a, c);
/// assert_eq!(index.regions().len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionIndex {
    threshold_deg: f64,
    regions: Vec<Region>,
}

impl RegionIndex {
    /// Creates an index with the given centre-distance threshold in degrees.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_deg` is not finite or is negative.
    pub fn new(threshold_deg: f64) -> Self {
        assert!(
            threshold_deg.is_finite() && threshold_deg >= 0.0,
            "threshold must be a non-negative finite number of degrees"
        );
        Self { threshold_deg, regions: Vec::new() }
    }

    /// The configured centre-distance threshold in degrees.
    pub fn threshold_deg(&self) -> f64 {
        self.threshold_deg
    }

    /// Assigns `rect` to the nearest existing region within the threshold,
    /// creating a new region when none qualifies. Returns the label.
    pub fn assign(&mut self, rect: &BoundingBox) -> RegionId {
        let center = rect.center();
        let mut best: Option<(usize, f64)> = None;
        for (i, region) in self.regions.iter().enumerate() {
            let d = center.degree_distance(region.center);
            if d <= self.threshold_deg && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) => {
                let region = &mut self.regions[i];
                region.members += 1;
                region.hull = BoundingBox::new(
                    LatLon::new(
                        region.hull.south_west().lat.min(rect.south_west().lat),
                        region.hull.south_west().lon.min(rect.south_west().lon),
                    ),
                    LatLon::new(
                        region.hull.north_east().lat.max(rect.north_east().lat),
                        region.hull.north_east().lon.max(rect.north_east().lon),
                    ),
                );
                region.id
            }
            None => {
                let id = RegionId(self.regions.len() as u32);
                self.regions.push(Region { id, center, members: 1, hull: *rect });
                id
            }
        }
    }

    /// Classifies without mutating: the nearest region within threshold.
    pub fn classify(&self, rect: &BoundingBox) -> Option<RegionId> {
        let center = rect.center();
        self.regions
            .iter()
            .map(|r| (r.id, center.degree_distance(r.center)))
            .filter(|(_, d)| *d <= self.threshold_deg)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
    }

    /// All discovered regions, ordered by creation.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(sw: (f64, f64), ne: (f64, f64)) -> BoundingBox {
        BoundingBox::new(LatLon::new(sw.0, sw.1), LatLon::new(ne.0, ne.1))
    }

    #[test]
    fn first_assignment_creates_region_zero() {
        let mut idx = RegionIndex::new(1.0);
        assert_eq!(idx.assign(&bb((0.0, 0.0), (1.0, 1.0))), RegionId(0));
    }

    #[test]
    fn nearby_rectangles_share_region() {
        let mut idx = RegionIndex::new(0.5);
        let a = idx.assign(&bb((0.0, 0.0), (1.0, 1.0)));
        let b = idx.assign(&bb((0.1, 0.1), (1.1, 1.1)));
        assert_eq!(a, b);
        assert_eq!(idx.regions()[0].members(), 2);
    }

    #[test]
    fn distant_rectangle_creates_new_region() {
        let mut idx = RegionIndex::new(0.5);
        let a = idx.assign(&bb((0.0, 0.0), (1.0, 1.0)));
        let b = idx.assign(&bb((10.0, 10.0), (11.0, 11.0)));
        assert_ne!(a, b);
    }

    #[test]
    fn assign_picks_nearest_of_multiple_candidates() {
        let mut idx = RegionIndex::new(5.0);
        let r0 = idx.assign(&bb((0.0, 0.0), (0.0, 0.0))); // centre (0,0)
        // Centre (4,0): within 5.0 of region 0, becomes member of r0.
        let r1 = idx.assign(&bb((4.0, 0.0), (4.0, 0.0)));
        assert_eq!(r0, r1);
    }

    #[test]
    fn classify_does_not_mutate() {
        let mut idx = RegionIndex::new(0.5);
        idx.assign(&bb((0.0, 0.0), (1.0, 1.0)));
        let n = idx.regions().len();
        assert_eq!(idx.classify(&bb((0.05, 0.05), (1.0, 1.0))), Some(RegionId(0)));
        assert_eq!(idx.classify(&bb((40.0, 40.0), (41.0, 41.0))), None);
        assert_eq!(idx.regions().len(), n);
    }

    #[test]
    fn hull_grows_with_members() {
        let mut idx = RegionIndex::new(1.0);
        idx.assign(&bb((0.0, 0.0), (1.0, 1.0)));
        idx.assign(&bb((-0.2, -0.3), (0.8, 0.9)));
        let hull = idx.regions()[0].hull();
        assert_eq!(hull.south_west(), LatLon::new(-0.2, -0.3));
        assert_eq!(hull.north_east(), LatLon::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn new_rejects_negative_threshold() {
        RegionIndex::new(-1.0);
    }
}
