//! Property-based tests for geographic primitives.

use geoprim::{polyline, BoundingBox, LatLon, LocalProjection, RegionIndex};
use proptest::prelude::*;

fn arb_latlon() -> impl Strategy<Value = LatLon> {
    (-85.0f64..85.0, -179.0f64..179.0).prop_map(|(lat, lon)| LatLon::new(lat, lon))
}

fn arb_path() -> impl Strategy<Value = Vec<LatLon>> {
    prop::collection::vec(arb_latlon(), 0..64)
}

proptest! {
    #[test]
    fn polyline_roundtrip_within_quantization(path in arb_path()) {
        let encoded = polyline::encode(&path);
        let decoded = polyline::decode(&encoded).unwrap();
        prop_assert_eq!(decoded.len(), path.len());
        for (a, b) in path.iter().zip(&decoded) {
            prop_assert!((a.lat - b.lat).abs() <= 6e-6);
            prop_assert!((a.lon - b.lon).abs() <= 6e-6);
        }
    }

    #[test]
    fn polyline_encoding_is_ascii(path in arb_path()) {
        let encoded = polyline::encode(&path);
        prop_assert!(encoded.bytes().all(|b| (63..=126).contains(&b)));
    }

    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_latlon(), b in arb_latlon(),
                                    c in arb_latlon(), d in arb_latlon()) {
        let r1 = BoundingBox::new(a, b);
        let r2 = BoundingBox::new(c, d);
        let x = r1.iou(&r2);
        let y = r2.iou(&r1);
        prop_assert!((x - y).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn tight_rectangle_contains_all_points(path in prop::collection::vec(arb_latlon(), 1..64)) {
        let rect = BoundingBox::tight(path.iter().copied()).unwrap();
        for p in &path {
            prop_assert!(rect.contains(*p));
        }
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_latlon(), b in arb_latlon(), c in arb_latlon()) {
        let ab = a.haversine_m(b);
        let bc = b.haversine_m(c);
        let ac = a.haversine_m(c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn projection_roundtrip(origin in arb_latlon(), dx in -20_000.0f64..20_000.0,
                            dy in -20_000.0f64..20_000.0) {
        let proj = LocalProjection::new(origin);
        let p = proj.to_latlon(dx, dy);
        let (x, y) = proj.to_meters(p);
        prop_assert!((x - dx).abs() < 1e-6);
        prop_assert!((y - dy).abs() < 1e-6);
    }

    #[test]
    fn grid_cells_cover_parent(a in arb_latlon(), b in arb_latlon(),
                               rows in 1usize..6, cols in 1usize..6,
                               probe in arb_latlon()) {
        let rect = BoundingBox::new(a, b);
        let cells = rect.grid(rows, cols);
        prop_assert_eq!(cells.len(), rows * cols);
        if rect.contains(probe) {
            prop_assert!(cells.iter().any(|c| c.contains(probe)));
        }
    }

    #[test]
    fn region_assignment_is_stable(rects in prop::collection::vec(
        (arb_latlon(), arb_latlon()), 1..32)) {
        let mut idx = RegionIndex::new(0.5);
        let rects: Vec<BoundingBox> =
            rects.into_iter().map(|(a, b)| BoundingBox::new(a, b)).collect();
        let labels: Vec<_> = rects.iter().map(|r| idx.assign(r)).collect();
        // Re-classifying after the fact returns a region within threshold
        // (not necessarily the same label: a later-created region may sit
        // closer) for every previously assigned rectangle.
        for r in &rects {
            prop_assert!(idx.classify(r).is_some());
        }
        // Labels are dense: 0..n_regions.
        let max = labels.iter().map(|l| l.0).max().unwrap();
        prop_assert_eq!(max as usize + 1, idx.regions().len());
    }

    #[test]
    fn polyline_decode_never_panics(s in "[ -~]{0,64}") {
        let _ = polyline::decode(&s);
    }
}
