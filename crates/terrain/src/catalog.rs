//! City and borough catalog (paper Tables I–III).
//!
//! Bounding boxes approximate the real metro areas; signatures encode
//! each area's real elevation character (base elevation, relief, hill
//! texture). The ten cities of the city-level dataset (Table II), the
//! six cities × 22 boroughs of the borough-level dataset (Table III),
//! and the two extra metros of the user-specific dataset (Table I:
//! Orlando, San Diego) are all present.

use crate::signature::ElevationSignature;
use geoprim::{BoundingBox, LatLon};
use serde::{Deserialize, Serialize};

/// The twelve metro areas appearing across the paper's three datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CityId {
    NewYorkCity,
    WashingtonDc,
    SanFrancisco,
    ColoradoSprings,
    Minneapolis,
    LosAngeles,
    NewJersey,
    Duluth,
    Miami,
    Tampa,
    Orlando,
    SanDiego,
}

impl CityId {
    /// All metro areas, in Table II order followed by the two
    /// user-specific-only metros.
    pub const ALL: [CityId; 12] = [
        CityId::NewYorkCity,
        CityId::WashingtonDc,
        CityId::SanFrancisco,
        CityId::ColoradoSprings,
        CityId::Minneapolis,
        CityId::LosAngeles,
        CityId::NewJersey,
        CityId::Duluth,
        CityId::Miami,
        CityId::Tampa,
        CityId::Orlando,
        CityId::SanDiego,
    ];

    /// The ten cities of the city-level dataset (Table II), in the
    /// paper's descending-sample-size order.
    pub const CITY_LEVEL: [CityId; 10] = [
        CityId::NewYorkCity,
        CityId::WashingtonDc,
        CityId::SanFrancisco,
        CityId::ColoradoSprings,
        CityId::Minneapolis,
        CityId::LosAngeles,
        CityId::NewJersey,
        CityId::Duluth,
        CityId::Miami,
        CityId::Tampa,
    ];

    /// The six cities of the borough-level dataset (Table III), in the
    /// paper's alphabetical order (LA, MIA, NJ, NYC, SF, WDC).
    pub const BOROUGH_LEVEL: [CityId; 6] = [
        CityId::LosAngeles,
        CityId::Miami,
        CityId::NewJersey,
        CityId::NewYorkCity,
        CityId::SanFrancisco,
        CityId::WashingtonDc,
    ];

    /// The paper's abbreviation (Table III): LA, MIA, NJ, NYC, SF, WDC…
    pub fn abbrev(self) -> &'static str {
        match self {
            CityId::NewYorkCity => "NYC",
            CityId::WashingtonDc => "WDC",
            CityId::SanFrancisco => "SF",
            CityId::ColoradoSprings => "COS",
            CityId::Minneapolis => "MSP",
            CityId::LosAngeles => "LA",
            CityId::NewJersey => "NJ",
            CityId::Duluth => "DLH",
            CityId::Miami => "MIA",
            CityId::Tampa => "TPA",
            CityId::Orlando => "ORL",
            CityId::SanDiego => "SD",
        }
    }

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CityId::NewYorkCity => "New York City",
            CityId::WashingtonDc => "Washington DC",
            CityId::SanFrancisco => "San Francisco",
            CityId::ColoradoSprings => "Colorado Springs",
            CityId::Minneapolis => "Minneapolis",
            CityId::LosAngeles => "Los Angeles",
            CityId::NewJersey => "New Jersey",
            CityId::Duluth => "Duluth",
            CityId::Miami => "Miami",
            CityId::Tampa => "Tampa",
            CityId::Orlando => "Orlando",
            CityId::SanDiego => "San Diego",
        }
    }
}

impl std::fmt::Display for CityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 22 boroughs of the borough-level dataset (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BoroughId {
    // Los Angeles
    LaDowntown,
    LaSantaMonica,
    LaChinatown,
    LaBeverlyHills,
    // Miami
    MiaDowntown,
    MiaMiamiBeach,
    MiaVirginiaKey,
    // New Jersey
    NjJerseyCity,
    NjWestNewYork,
    NjNewark,
    // New York City
    NycManhattan,
    NycQueens,
    NycBrooklynSouth,
    NycBrooklynNorth,
    NycBronx,
    NycStatenIsland,
    // San Francisco
    SfSouthWest,
    SfSouthEast,
    SfNorthWest,
    SfNorthEast,
    // Washington DC
    WdcDistrictOfColumbia,
    WdcBaltimore,
}

impl BoroughId {
    /// All boroughs in Table III order.
    pub const ALL: [BoroughId; 22] = [
        BoroughId::LaDowntown,
        BoroughId::LaSantaMonica,
        BoroughId::LaChinatown,
        BoroughId::LaBeverlyHills,
        BoroughId::MiaDowntown,
        BoroughId::MiaMiamiBeach,
        BoroughId::MiaVirginiaKey,
        BoroughId::NjJerseyCity,
        BoroughId::NjWestNewYork,
        BoroughId::NjNewark,
        BoroughId::NycManhattan,
        BoroughId::NycQueens,
        BoroughId::NycBrooklynSouth,
        BoroughId::NycBrooklynNorth,
        BoroughId::NycBronx,
        BoroughId::NycStatenIsland,
        BoroughId::SfSouthWest,
        BoroughId::SfSouthEast,
        BoroughId::SfNorthWest,
        BoroughId::SfNorthEast,
        BoroughId::WdcDistrictOfColumbia,
        BoroughId::WdcBaltimore,
    ];

    /// The city this borough belongs to.
    pub fn city(self) -> CityId {
        use BoroughId::*;
        match self {
            LaDowntown | LaSantaMonica | LaChinatown | LaBeverlyHills => CityId::LosAngeles,
            MiaDowntown | MiaMiamiBeach | MiaVirginiaKey => CityId::Miami,
            NjJerseyCity | NjWestNewYork | NjNewark => CityId::NewJersey,
            NycManhattan | NycQueens | NycBrooklynSouth | NycBrooklynNorth | NycBronx
            | NycStatenIsland => CityId::NewYorkCity,
            SfSouthWest | SfSouthEast | SfNorthWest | SfNorthEast => CityId::SanFrancisco,
            WdcDistrictOfColumbia | WdcBaltimore => CityId::WashingtonDc,
        }
    }

    /// Borough name as printed in Table III.
    pub fn name(self) -> &'static str {
        use BoroughId::*;
        match self {
            LaDowntown | MiaDowntown => "Downtown",
            LaSantaMonica => "Santa Monica",
            LaChinatown => "Chinatown",
            LaBeverlyHills => "Beverly Hills",
            MiaMiamiBeach => "Miami Beach",
            MiaVirginiaKey => "Virginia Key",
            NjJerseyCity => "Jersey City",
            NjWestNewYork => "West New York",
            NjNewark => "Newark",
            NycManhattan => "Manhattan",
            NycQueens => "Queens",
            NycBrooklynSouth => "Brooklyn(South)",
            NycBrooklynNorth => "Brooklyn(North)",
            NycBronx => "Bronx",
            NycStatenIsland => "Staten Island",
            SfSouthWest => "South West",
            SfSouthEast => "South East",
            SfNorthWest => "North West",
            SfNorthEast => "North East",
            WdcDistrictOfColumbia => "District of Columbia",
            WdcBaltimore => "Baltimore",
        }
    }

    /// Boroughs of a given city, in Table III order.
    pub fn of_city(city: CityId) -> Vec<BoroughId> {
        Self::ALL.iter().copied().filter(|b| b.city() == city).collect()
    }
}

impl std::fmt::Display for BoroughId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.city().abbrev(), self.name())
    }
}

/// A metro area: bounding box + elevation signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// Which metro this is.
    pub id: CityId,
    /// The mining boundary `B` for the city (paper Fig. 4, phase 1).
    pub bbox: BoundingBox,
    /// The synthetic elevation character of the metro.
    pub signature: ElevationSignature,
}

/// A borough: bounding box within its parent city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Borough {
    /// Which borough this is.
    pub id: BoroughId,
    /// The mining boundary for the borough.
    pub bbox: BoundingBox,
}

/// The full city/borough catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    cities: Vec<City>,
    boroughs: Vec<Borough>,
}

fn bb(sw: (f64, f64), ne: (f64, f64)) -> BoundingBox {
    BoundingBox::new(LatLon::new(sw.0, sw.1), LatLon::new(ne.0, ne.1))
}

#[allow(clippy::too_many_arguments)]
fn sig(
    base: f64,
    relief: f64,
    wl: f64,
    regional: f64,
    regional_wl: f64,
    octaves: u32,
    ridged: bool,
) -> ElevationSignature {
    ElevationSignature {
        base_m: base,
        relief_m: relief,
        hill_wavelength_m: wl,
        regional_relief_m: regional,
        regional_wavelength_m: regional_wl,
        octaves,
        gain: 0.5,
        ridged,
    }
}

impl Catalog {
    /// Builds the standard catalog used by every experiment.
    pub fn standard() -> Self {
        let cities = vec![
            // Coastal plain: near sea level, very gentle relief; boroughs
            // distinguished almost only by the weak regional octave.
            City {
                id: CityId::NewYorkCity,
                bbox: bb((40.49, -74.27), (40.92, -73.68)),
                signature: sig(15.0, 22.0, 2_500.0, 14.0, 12_000.0, 4, false),
            },
            City {
                id: CityId::WashingtonDc,
                bbox: bb((38.79, -77.12), (39.38, -76.52)),
                signature: sig(30.0, 45.0, 3_500.0, 22.0, 15_000.0, 4, false),
            },
            City {
                id: CityId::SanFrancisco,
                bbox: bb((37.70, -122.52), (37.81, -122.36)),
                signature: sig(40.0, 95.0, 1_400.0, 35.0, 5_000.0, 5, true),
            },
            City {
                id: CityId::ColoradoSprings,
                bbox: bb((38.74, -104.92), (38.95, -104.70)),
                signature: sig(1_840.0, 150.0, 4_500.0, 60.0, 12_000.0, 5, true),
            },
            City {
                id: CityId::Minneapolis,
                bbox: bb((44.89, -93.33), (45.05, -93.19)),
                signature: sig(255.0, 18.0, 3_000.0, 8.0, 9_000.0, 4, false),
            },
            City {
                id: CityId::LosAngeles,
                bbox: bb((33.93, -118.55), (34.15, -118.15)),
                signature: sig(65.0, 75.0, 3_200.0, 40.0, 11_000.0, 4, false),
            },
            City {
                id: CityId::NewJersey,
                bbox: bb((40.65, -74.25), (40.82, -73.98)),
                signature: sig(9.0, 26.0, 2_800.0, 12.0, 8_000.0, 4, false),
            },
            City {
                id: CityId::Duluth,
                bbox: bb((46.72, -92.20), (46.84, -92.00)),
                signature: sig(230.0, 95.0, 2_200.0, 45.0, 7_000.0, 5, true),
            },
            City {
                id: CityId::Miami,
                bbox: bb((25.70, -80.32), (25.86, -80.11)),
                signature: sig(2.5, 3.0, 2_000.0, 1.5, 8_000.0, 3, false),
            },
            City {
                id: CityId::Tampa,
                bbox: bb((27.87, -82.54), (28.06, -82.37)),
                signature: sig(11.0, 8.0, 2_600.0, 4.0, 9_000.0, 3, false),
            },
            // User-specific-only metros (Table I).
            City {
                id: CityId::Orlando,
                bbox: bb((28.38, -81.51), (28.62, -81.26)),
                signature: sig(28.0, 9.0, 2_800.0, 5.0, 10_000.0, 3, false),
            },
            City {
                id: CityId::SanDiego,
                bbox: bb((32.63, -117.25), (32.88, -117.02)),
                signature: sig(25.0, 60.0, 2_400.0, 30.0, 9_000.0, 4, false),
            },
        ];

        let boroughs = vec![
            Borough { id: BoroughId::LaDowntown, bbox: bb((34.01, -118.28), (34.07, -118.21)) },
            Borough { id: BoroughId::LaSantaMonica, bbox: bb((33.99, -118.52), (34.05, -118.44)) },
            Borough { id: BoroughId::LaChinatown, bbox: bb((34.058, -118.245), (34.072, -118.228)) },
            Borough { id: BoroughId::LaBeverlyHills, bbox: bb((34.05, -118.43), (34.11, -118.38)) },
            Borough { id: BoroughId::MiaDowntown, bbox: bb((25.755, -80.21), (25.80, -80.18)) },
            Borough { id: BoroughId::MiaMiamiBeach, bbox: bb((25.765, -80.15), (25.825, -80.117)) },
            Borough { id: BoroughId::MiaVirginiaKey, bbox: bb((25.72, -80.175), (25.755, -80.14)) },
            Borough { id: BoroughId::NjJerseyCity, bbox: bb((40.68, -74.11), (40.75, -74.02)) },
            Borough { id: BoroughId::NjWestNewYork, bbox: bb((40.77, -74.02), (40.80, -73.99)) },
            Borough { id: BoroughId::NjNewark, bbox: bb((40.69, -74.22), (40.77, -74.13)) },
            Borough { id: BoroughId::NycManhattan, bbox: bb((40.70, -74.02), (40.88, -73.91)) },
            Borough { id: BoroughId::NycQueens, bbox: bb((40.54, -73.96), (40.80, -73.70)) },
            Borough { id: BoroughId::NycBrooklynSouth, bbox: bb((40.57, -74.05), (40.65, -73.86)) },
            Borough { id: BoroughId::NycBrooklynNorth, bbox: bb((40.65, -74.05), (40.74, -73.855)) },
            Borough { id: BoroughId::NycBronx, bbox: bb((40.79, -73.93), (40.92, -73.765)) },
            Borough { id: BoroughId::NycStatenIsland, bbox: bb((40.49, -74.26), (40.65, -74.05)) },
            Borough { id: BoroughId::SfSouthWest, bbox: bb((37.70, -122.52), (37.755, -122.44)) },
            Borough { id: BoroughId::SfSouthEast, bbox: bb((37.70, -122.44), (37.755, -122.36)) },
            Borough { id: BoroughId::SfNorthWest, bbox: bb((37.755, -122.52), (37.81, -122.44)) },
            Borough { id: BoroughId::SfNorthEast, bbox: bb((37.755, -122.44), (37.81, -122.36)) },
            Borough {
                id: BoroughId::WdcDistrictOfColumbia,
                bbox: bb((38.80, -77.12), (39.00, -76.91)),
            },
            Borough { id: BoroughId::WdcBaltimore, bbox: bb((39.20, -76.71), (39.37, -76.53)) },
        ];

        Self { cities, boroughs }
    }

    /// All cities in catalog order.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// All boroughs in Table III order.
    pub fn boroughs(&self) -> &[Borough] {
        &self.boroughs
    }

    /// Looks up a city by id.
    ///
    /// # Panics
    ///
    /// Never panics: every `CityId` is present in the standard catalog.
    pub fn city(&self, id: CityId) -> &City {
        self.cities
            .iter()
            .find(|c| c.id == id)
            .expect("catalog contains every CityId")
    }

    /// Looks up a borough by id.
    pub fn borough(&self, id: BoroughId) -> &Borough {
        self.boroughs
            .iter()
            .find(|b| b.id == id)
            .expect("catalog contains every BoroughId")
    }

    /// The city whose bounding box contains `p`, if any. When boxes
    /// overlap (NYC and NJ share the Hudson), the *smallest* containing
    /// box wins, which keeps borough coordinates attributed sensibly.
    pub fn city_at(&self, p: LatLon) -> Option<&City> {
        self.cities
            .iter()
            .filter(|c| c.bbox.contains(p))
            .min_by(|a, b| a.bbox.area_deg2().total_cmp(&b.bbox.area_deg2()))
    }

    /// Nearest city by bbox-centre distance; used for coordinates that
    /// fall just outside every box (routes may wander past a boundary).
    pub fn nearest_city(&self, p: LatLon) -> &City {
        self.cities
            .iter()
            .min_by(|a, b| {
                p.degree_distance(a.bbox.center())
                    .total_cmp(&p.degree_distance(b.bbox.center()))
            })
            .expect("catalog is non-empty")
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_cities_and_boroughs() {
        let c = Catalog::standard();
        assert_eq!(c.cities().len(), 12);
        assert_eq!(c.boroughs().len(), 22);
        for id in CityId::ALL {
            assert_eq!(c.city(id).id, id);
        }
        for id in BoroughId::ALL {
            assert_eq!(c.borough(id).id, id);
        }
    }

    #[test]
    fn all_signatures_validate() {
        for city in Catalog::standard().cities() {
            city.signature
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", city.id));
        }
    }

    #[test]
    fn boroughs_lie_within_their_city() {
        let c = Catalog::standard();
        for b in c.boroughs() {
            let city = c.city(b.id.city());
            assert!(
                city.bbox.encloses(&b.bbox),
                "{} not inside {}",
                b.id,
                city.id
            );
        }
    }

    #[test]
    fn borough_counts_match_table_iii() {
        assert_eq!(BoroughId::of_city(CityId::LosAngeles).len(), 4);
        assert_eq!(BoroughId::of_city(CityId::Miami).len(), 3);
        assert_eq!(BoroughId::of_city(CityId::NewJersey).len(), 3);
        assert_eq!(BoroughId::of_city(CityId::NewYorkCity).len(), 6);
        assert_eq!(BoroughId::of_city(CityId::SanFrancisco).len(), 4);
        assert_eq!(BoroughId::of_city(CityId::WashingtonDc).len(), 2);
    }

    #[test]
    fn city_at_resolves_borough_centres() {
        let c = Catalog::standard();
        for b in c.boroughs() {
            let found = c.city_at(b.bbox.center()).expect("borough centre in some city");
            assert_eq!(found.id, b.id.city(), "borough {}", b.id);
        }
    }

    #[test]
    fn nearest_city_handles_outliers() {
        let c = Catalog::standard();
        // A point in the Everglades is nearest to Miami.
        assert_eq!(c.nearest_city(LatLon::new(25.6, -80.5)).id, CityId::Miami);
    }

    #[test]
    fn sf_quadrants_tile_the_city() {
        let c = Catalog::standard();
        let sf = c.city(CityId::SanFrancisco).bbox;
        let total: f64 = BoroughId::of_city(CityId::SanFrancisco)
            .iter()
            .map(|b| c.borough(*b).bbox.area_deg2())
            .sum();
        assert!((total - sf.area_deg2()).abs() < 1e-9);
    }
}
