//! Raster digital-elevation-model (DEM) support.
//!
//! [`RasterDem`] is a rectangular elevation grid with bilinear
//! interpolation, the format real elevation data ships in (SRTM/ASTER
//! tiles). It implements [`ElevationModel`], so a downstream user can
//! swap the synthetic terrain for real data without touching the attack
//! pipeline; [`RasterDem::sample_from`] rasterizes any other model
//! (including [`crate::SyntheticTerrain`]) into a grid, which is also
//! how the "public sources" of threat model TM-3 — an adversary
//! profiling city elevations offline — are emulated faithfully.

use crate::model::ElevationModel;
use geoprim::{BoundingBox, LatLon};
use serde::{Deserialize, Serialize};

/// A row-major elevation grid over a bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RasterDem {
    bbox: BoundingBox,
    rows: usize,
    cols: usize,
    /// `values[r * cols + c]`, row 0 at the southern edge.
    values: Vec<f64>,
}

impl RasterDem {
    /// Wraps an existing grid.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are smaller than 2×2, the value count does
    /// not match, or any value is non-finite.
    pub fn new(bbox: BoundingBox, rows: usize, cols: usize, values: Vec<f64>) -> Self {
        assert!(rows >= 2 && cols >= 2, "DEM needs at least a 2x2 grid");
        assert_eq!(values.len(), rows * cols, "value count must be rows*cols");
        assert!(values.iter().all(|v| v.is_finite()), "DEM values must be finite");
        Self { bbox, rows, cols, values }
    }

    /// Rasterizes another elevation model over `bbox`.
    pub fn sample_from<M: ElevationModel>(
        model: &M,
        bbox: BoundingBox,
        rows: usize,
        cols: usize,
    ) -> Self {
        assert!(rows >= 2 && cols >= 2, "DEM needs at least a 2x2 grid");
        let mut values = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let lat = bbox.south_west().lat
                + bbox.lat_span() * r as f64 / (rows - 1) as f64;
            for c in 0..cols {
                let lon = bbox.south_west().lon
                    + bbox.lon_span() * c as f64 / (cols - 1) as f64;
                values.push(model.elevation_at(LatLon::new(lat, lon)));
            }
        }
        Self { bbox, rows, cols, values }
    }

    /// The grid's bounding box.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The raw grid value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn cell(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        self.values[row * self.cols + col]
    }

    /// Approximate ground resolution in metres `(north-south, east-west)`.
    pub fn resolution_m(&self) -> (f64, f64) {
        let sw = self.bbox.south_west();
        let ns = sw.haversine_m(LatLon::new(self.bbox.north_east().lat, sw.lon))
            / (self.rows - 1) as f64;
        let ew = sw.haversine_m(LatLon::new(sw.lat, self.bbox.north_east().lon))
            / (self.cols - 1) as f64;
        (ns, ew)
    }
}

impl ElevationModel for RasterDem {
    /// Bilinear interpolation inside the grid; coordinates outside the
    /// bounding box clamp to the edge (standard DEM tiling behaviour).
    fn elevation_at(&self, p: LatLon) -> f64 {
        let fr = ((p.lat - self.bbox.south_west().lat) / self.bbox.lat_span().max(f64::MIN_POSITIVE))
            .clamp(0.0, 1.0)
            * (self.rows - 1) as f64;
        let fc = ((p.lon - self.bbox.south_west().lon) / self.bbox.lon_span().max(f64::MIN_POSITIVE))
            .clamp(0.0, 1.0)
            * (self.cols - 1) as f64;
        let r0 = (fr.floor() as usize).min(self.rows - 2);
        let c0 = (fc.floor() as usize).min(self.cols - 2);
        let tr = fr - r0 as f64;
        let tc = fc - c0 as f64;
        let v00 = self.cell(r0, c0);
        let v01 = self.cell(r0, c0 + 1);
        let v10 = self.cell(r0 + 1, c0);
        let v11 = self.cell(r0 + 1, c0 + 1);
        let south = v00 * (1.0 - tc) + v01 * tc;
        let north = v10 * (1.0 - tc) + v11 * tc;
        south * (1.0 - tr) + north * tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CityId, SyntheticTerrain};

    fn unit_box() -> BoundingBox {
        BoundingBox::new(LatLon::new(10.0, 20.0), LatLon::new(11.0, 21.0))
    }

    #[test]
    fn interpolation_reproduces_grid_corners() {
        let dem = RasterDem::new(unit_box(), 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(dem.elevation_at(LatLon::new(10.0, 20.0)), 1.0); // SW
        assert_eq!(dem.elevation_at(LatLon::new(10.0, 21.0)), 2.0); // SE
        assert_eq!(dem.elevation_at(LatLon::new(11.0, 20.0)), 3.0); // NW
        assert_eq!(dem.elevation_at(LatLon::new(11.0, 21.0)), 4.0); // NE
    }

    #[test]
    fn interpolation_is_bilinear_at_centre() {
        let dem = RasterDem::new(unit_box(), 2, 2, vec![0.0, 10.0, 20.0, 30.0]);
        let centre = dem.elevation_at(LatLon::new(10.5, 20.5));
        assert!((centre - 15.0).abs() < 1e-9);
    }

    #[test]
    fn outside_points_clamp_to_edges() {
        let dem = RasterDem::new(unit_box(), 2, 2, vec![1.0, 1.0, 9.0, 9.0]);
        assert_eq!(dem.elevation_at(LatLon::new(9.0, 20.5)), 1.0);
        assert_eq!(dem.elevation_at(LatLon::new(12.0, 20.5)), 9.0);
    }

    #[test]
    fn rasterized_synthetic_terrain_is_close_to_the_original() {
        let t = SyntheticTerrain::new(5);
        let bbox = t.catalog().city(CityId::Miami).bbox;
        let dem = RasterDem::sample_from(&t, bbox, 80, 80);
        // Probe interior points: a fine raster tracks the smooth field.
        let mut worst: f64 = 0.0;
        for i in 1..20 {
            let p = LatLon::new(
                bbox.south_west().lat + bbox.lat_span() * i as f64 / 21.0,
                bbox.south_west().lon + bbox.lon_span() * (21 - i) as f64 / 21.0,
            );
            worst = worst.max((dem.elevation_at(p) - t.elevation_at(p)).abs());
        }
        assert!(worst < 2.0, "raster deviates by {worst} m");
    }

    #[test]
    fn resolution_is_plausible() {
        let t = SyntheticTerrain::new(5);
        let bbox = t.catalog().city(CityId::Miami).bbox;
        let dem = RasterDem::sample_from(&t, bbox, 60, 60);
        let (ns, ew) = dem.resolution_m();
        assert!(ns > 100.0 && ns < 1000.0, "ns {ns}");
        assert!(ew > 100.0 && ew < 1000.0, "ew {ew}");
    }

    #[test]
    fn serde_roundtrip() {
        let dem = RasterDem::new(unit_box(), 2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let json = serde_json::to_string(&dem).unwrap();
        let back: RasterDem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dem);
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn rejects_degenerate_grid() {
        RasterDem::new(unit_box(), 1, 5, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        RasterDem::new(unit_box(), 2, 2, vec![0.0, f64::NAN, 1.0, 2.0]);
    }
}
