//! An elevation-API facade mimicking the Google Maps Elevation API.

use crate::model::ElevationModel;
use geoprim::LatLon;
use std::cell::Cell;

/// The Google Elevation API accepts at most 512 locations per request;
/// the facade enforces the same batching so client code exercises the
/// same chunking logic it would against the real service.
pub const MAX_LOCATIONS_PER_REQUEST: usize = 512;

/// Request accounting for an [`ElevationService`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of (simulated) HTTP requests issued.
    pub requests: u64,
    /// Number of individual locations resolved.
    pub locations: u64,
}

/// A facade over an [`ElevationModel`] that mirrors how the paper's
/// pipeline consumed the Google Maps Elevation API: batch lookups and
/// *sampled paths* ("we obtained the corresponding elevation profile for
/// each polyline path").
///
/// # Examples
///
/// ```
/// use terrain::{ElevationService, SyntheticTerrain};
/// use geoprim::LatLon;
///
/// let service = ElevationService::new(SyntheticTerrain::new(1));
/// let path = vec![LatLon::new(38.89, -77.05), LatLon::new(38.90, -77.03)];
/// let profile = service.sample_path(&path, 100);
/// assert_eq!(profile.len(), 100);
/// assert!(service.stats().requests >= 1);
/// ```
#[derive(Debug)]
pub struct ElevationService<M> {
    model: M,
    requests: Cell<u64>,
    locations: Cell<u64>,
}

impl<M: ElevationModel> ElevationService<M> {
    /// Wraps an elevation model.
    pub fn new(model: M) -> Self {
        Self { model, requests: Cell::new(0), locations: Cell::new(0) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Accumulated request accounting.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats { requests: self.requests.get(), locations: self.locations.get() }
    }

    /// Resolves elevations for explicit locations, in API-sized batches.
    pub fn lookup(&self, points: &[LatLon]) -> Vec<f64> {
        let mut out = Vec::with_capacity(points.len());
        for chunk in points.chunks(MAX_LOCATIONS_PER_REQUEST) {
            self.requests.set(self.requests.get() + 1);
            self.locations.set(self.locations.get() + chunk.len() as u64);
            out.extend(self.model.elevations(chunk));
        }
        out
    }

    /// Samples `n` equally spaced (by arc length) elevations along a
    /// polyline path — the "sampled path" mode of the Google API.
    ///
    /// Returns an empty vector for an empty path or `n == 0`. A
    /// single-point path yields `n` copies of that point's elevation.
    pub fn sample_path(&self, path: &[LatLon], n: usize) -> Vec<f64> {
        let pts = resample_path(path, n);
        self.lookup(&pts)
    }
}

/// Resamples a polyline into `n` points equally spaced by arc length.
///
/// Endpoints are preserved: the first output point is `path[0]` and the
/// last is `path[last]` (for `n >= 2`).
pub(crate) fn resample_path(path: &[LatLon], n: usize) -> Vec<LatLon> {
    if n == 0 || path.is_empty() {
        return Vec::new();
    }
    if path.len() == 1 || n == 1 {
        return vec![path[0]; n];
    }
    // Cumulative arc length per vertex.
    let mut cum = Vec::with_capacity(path.len());
    cum.push(0.0);
    for w in path.windows(2) {
        let d = w[0].haversine_m(w[1]);
        cum.push(cum.last().unwrap() + d);
    }
    let total = *cum.last().unwrap();
    if total <= 0.0 {
        return vec![path[0]; n];
    }
    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for i in 0..n {
        let target = total * i as f64 / (n - 1) as f64;
        while seg + 1 < cum.len() - 1 && cum[seg + 1] < target {
            seg += 1;
        }
        let seg_len = cum[seg + 1] - cum[seg];
        let t = if seg_len > 0.0 { (target - cum[seg]) / seg_len } else { 0.0 };
        let a = path[seg];
        let b = path[seg + 1];
        out.push(LatLon::new(a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticTerrain;

    #[test]
    fn lookup_batches_requests() {
        let svc = ElevationService::new(SyntheticTerrain::new(1));
        let pts = vec![LatLon::new(40.75, -73.98); 1200];
        let out = svc.lookup(&pts);
        assert_eq!(out.len(), 1200);
        assert_eq!(svc.stats().requests, 3); // 512 + 512 + 176
        assert_eq!(svc.stats().locations, 1200);
    }

    #[test]
    fn sample_path_preserves_endpoints() {
        let svc = ElevationService::new(SyntheticTerrain::new(1));
        let a = LatLon::new(38.89, -77.05);
        let b = LatLon::new(38.92, -77.00);
        let pts = resample_path(&[a, b], 50);
        assert_eq!(pts.len(), 50);
        assert!(pts[0].degree_distance(a) < 1e-12);
        assert!(pts[49].degree_distance(b) < 1e-12);
        let profile = svc.sample_path(&[a, b], 50);
        assert_eq!(profile.len(), 50);
    }

    #[test]
    fn resample_is_arc_length_uniform() {
        // An L-shaped path: spacing must be uniform along the arc.
        let path = vec![
            LatLon::new(0.0, 0.0),
            LatLon::new(0.01, 0.0),
            LatLon::new(0.01, 0.01),
        ];
        let pts = resample_path(&path, 21);
        let mut dists = Vec::new();
        for w in pts.windows(2) {
            dists.push(w[0].haversine_m(w[1]));
        }
        let mean = dists.iter().sum::<f64>() / dists.len() as f64;
        for d in dists {
            assert!((d - mean).abs() < mean * 0.05, "spacing {d} vs mean {mean}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let svc = ElevationService::new(SyntheticTerrain::new(1));
        assert!(svc.sample_path(&[], 10).is_empty());
        assert!(svc.sample_path(&[LatLon::new(1.0, 1.0)], 0).is_empty());
        let single = svc.sample_path(&[LatLon::new(28.5, -81.4)], 5);
        assert_eq!(single.len(), 5);
        assert!(single.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn zero_length_path_repeats_point() {
        let p = LatLon::new(25.77, -80.19);
        let pts = resample_path(&[p, p, p], 7);
        assert_eq!(pts.len(), 7);
        assert!(pts.iter().all(|q| q.degree_distance(p) < 1e-12));
    }
}
