//! Per-city elevation signatures.

use serde::{Deserialize, Serialize};

/// Parameters describing the elevation character of one metro area.
///
/// A signature is the synthetic stand-in for what the paper's adversary
/// learns when they "profile the elevation of cities, with information
/// that is easily obtained from public sources" (threat model TM-3).
/// The classifier never sees these parameters — only elevation profiles
/// sampled from terrain generated with them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElevationSignature {
    /// Mean elevation above sea level in metres (e.g. Miami ≈ 2 m,
    /// Colorado Springs ≈ 1840 m).
    pub base_m: f64,
    /// Peak-to-trough relief amplitude of the dominant hills, metres.
    pub relief_m: f64,
    /// Wavelength of the dominant hills in metres.
    pub hill_wavelength_m: f64,
    /// Amplitude of the *regional* low-frequency octave in metres. This
    /// octave has wavelength comparable to a borough, so it is what makes
    /// boroughs of the same city (weakly) distinguishable.
    pub regional_relief_m: f64,
    /// Wavelength of the regional octave in metres.
    pub regional_wavelength_m: f64,
    /// Number of fBm octaves below the dominant wavelength.
    pub octaves: u32,
    /// Per-octave amplitude gain in `(0, 1]`.
    pub gain: f64,
    /// Whether the hill octaves use ridged noise (sharp crests), typical
    /// of genuinely rugged cities.
    pub ridged: bool,
}

impl ElevationSignature {
    /// A conservative default: gently rolling 20 m relief at 100 m base.
    pub fn rolling() -> Self {
        Self {
            base_m: 100.0,
            relief_m: 20.0,
            hill_wavelength_m: 3_000.0,
            regional_relief_m: 10.0,
            regional_wavelength_m: 9_000.0,
            octaves: 4,
            gain: 0.5,
            ridged: false,
        }
    }

    /// Validates physical plausibility of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (non-finite field, non-positive wavelength, zero
    /// octaves, or gain outside `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        let finite = [
            ("base_m", self.base_m),
            ("relief_m", self.relief_m),
            ("hill_wavelength_m", self.hill_wavelength_m),
            ("regional_relief_m", self.regional_relief_m),
            ("regional_wavelength_m", self.regional_wavelength_m),
            ("gain", self.gain),
        ];
        for (name, v) in finite {
            if !v.is_finite() {
                return Err(format!("{name} must be finite, got {v}"));
            }
        }
        if self.hill_wavelength_m <= 0.0 || self.regional_wavelength_m <= 0.0 {
            return Err("wavelengths must be positive".into());
        }
        if self.relief_m < 0.0 || self.regional_relief_m < 0.0 {
            return Err("relief amplitudes must be non-negative".into());
        }
        if self.octaves == 0 {
            return Err("octaves must be at least 1".into());
        }
        if !(0.0 < self.gain && self.gain <= 1.0) {
            return Err(format!("gain must be in (0, 1], got {}", self.gain));
        }
        Ok(())
    }
}

impl Default for ElevationSignature {
    fn default() -> Self {
        Self::rolling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_is_valid() {
        assert!(ElevationSignature::rolling().validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_fields() {
        let mut s = ElevationSignature::rolling();
        s.gain = 0.0;
        assert!(s.validate().is_err());
        let mut s = ElevationSignature::rolling();
        s.hill_wavelength_m = -5.0;
        assert!(s.validate().is_err());
        let mut s = ElevationSignature::rolling();
        s.octaves = 0;
        assert!(s.validate().is_err());
        let mut s = ElevationSignature::rolling();
        s.base_m = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = ElevationSignature::rolling();
        s.relief_m = -1.0;
        assert!(s.validate().is_err());
    }
}
