//! Deterministic procedural elevation substrate.
//!
//! The paper augments mined route segments with elevation profiles from
//! the Google Maps Elevation API and profiles real metro-area terrain.
//! Neither is available offline, so this crate builds the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! - [`noise`]: seeded, deterministic multi-octave value noise,
//! - [`signature`]: per-city *elevation signatures* (base elevation,
//!   relief amplitude, hill wavelength, ruggedness) calibrated to the 12
//!   metro areas used in the paper's three datasets,
//! - [`catalog`]: city and borough bounding boxes (Tables I–III),
//! - [`SyntheticTerrain`]: an [`ElevationModel`] mapping any coordinate
//!   to an elevation in metres,
//! - [`ElevationService`]: a Google-Elevation-API-like facade with path
//!   resampling and request batching/accounting.
//!
//! The attack's learnability rests on two properties of real terrain
//! that the signatures reproduce: *across cities* elevation ranges and
//! textures differ strongly (flat Miami vs. mountainous Colorado
//! Springs), while *within a city* boroughs differ only through weak
//! low-frequency relief — which is exactly why the paper's TM-3
//! (city-level) attack outperforms TM-2 (borough-level).
//!
//! # Examples
//!
//! ```
//! use terrain::{CityId, SyntheticTerrain, ElevationModel};
//!
//! let terrain = SyntheticTerrain::new(42);
//! let miami = terrain.catalog().city(CityId::Miami).bbox.center();
//! let springs = terrain.catalog().city(CityId::ColoradoSprings).bbox.center();
//! assert!(terrain.elevation_at(miami) < 40.0);
//! assert!(terrain.elevation_at(springs) > 1500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dem;
pub mod noise;
pub mod signature;

mod model;
mod service;

pub use catalog::{BoroughId, Catalog, City, CityId};
pub use dem::RasterDem;
pub use model::{ElevationModel, SyntheticTerrain};
pub use service::{ElevationService, ServiceStats, MAX_LOCATIONS_PER_REQUEST};
pub use signature::ElevationSignature;
