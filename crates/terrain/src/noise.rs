//! Seeded, deterministic value noise.
//!
//! A small fractal-Brownian-motion (fBm) value-noise implementation used
//! as the stochastic backbone of the synthetic terrain. Everything is a
//! pure function of `(x, y, seed)` — no global state — so any experiment
//! seeded identically regenerates byte-identical elevation profiles.

/// SplitMix64 finalizer: a high-quality 64-bit avalanche hash.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes an integer lattice point to a value uniform in `[-1, 1]`.
#[inline]
fn lattice(ix: i64, iy: i64, seed: u64) -> f64 {
    let h = splitmix64(
        (ix as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(seed),
    );
    // Map the top 53 bits to [0,1), then to [-1,1].
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Quintic smoothstep (Perlin's fade curve): C2-continuous interpolation.
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Single-octave value noise at `(x, y)`, in `[-1, 1]`.
///
/// Bilinear interpolation of hashed lattice values with a quintic fade,
/// giving smooth, band-limited terrain-like variation with wavelength ~1.
///
/// # Examples
///
/// ```
/// let a = terrain::noise::value_noise(1.5, 2.5, 7);
/// let b = terrain::noise::value_noise(1.5, 2.5, 7);
/// assert_eq!(a, b); // deterministic
/// assert!((-1.0..=1.0).contains(&a));
/// ```
pub fn value_noise(x: f64, y: f64, seed: u64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = fade(x - x0);
    let ty = fade(y - y0);
    let (ix, iy) = (x0 as i64, y0 as i64);
    let v00 = lattice(ix, iy, seed);
    let v10 = lattice(ix + 1, iy, seed);
    let v01 = lattice(ix, iy + 1, seed);
    let v11 = lattice(ix + 1, iy + 1, seed);
    lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty)
}

/// Multi-octave fractal Brownian motion over [`value_noise`].
///
/// Each successive octave doubles frequency and multiplies amplitude by
/// `gain`. The result is normalized back to roughly `[-1, 1]`.
///
/// # Panics
///
/// Panics if `octaves` is zero.
pub fn fbm(x: f64, y: f64, seed: u64, octaves: u32, gain: f64) -> f64 {
    assert!(octaves > 0, "fbm requires at least one octave");
    let mut sum = 0.0;
    let mut amp = 1.0;
    let mut freq = 1.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        sum += amp * value_noise(x * freq, y * freq, seed.wrapping_add(o as u64));
        norm += amp;
        amp *= gain;
        freq *= 2.0;
    }
    sum / norm
}

/// Ridged fBm: `1 - |fbm|` per octave, producing sharp hill crests.
///
/// Used for rugged cities (San Francisco, Duluth, Colorado Springs)
/// whose elevation profiles show the jagged texture the CNN keys on.
///
/// # Panics
///
/// Panics if `octaves` is zero.
pub fn ridged(x: f64, y: f64, seed: u64, octaves: u32, gain: f64) -> f64 {
    assert!(octaves > 0, "ridged requires at least one octave");
    let mut sum = 0.0;
    let mut amp = 1.0;
    let mut freq = 1.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        let n = value_noise(x * freq, y * freq, seed.wrapping_add(0x5D0_u64 + o as u64));
        sum += amp * (1.0 - n.abs());
        norm += amp;
        amp *= gain;
        freq *= 2.0;
    }
    // (sum/norm) is in [0,1]; recenter to [-1,1].
    (sum / norm) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        for &(x, y, s) in &[(0.3, 0.7, 1u64), (12.5, -4.25, 99), (-3.0, -3.0, 7)] {
            assert_eq!(value_noise(x, y, s), value_noise(x, y, s));
        }
    }

    #[test]
    fn noise_depends_on_seed() {
        let a = value_noise(1.25, 2.75, 1);
        let b = value_noise(1.25, 2.75, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_is_bounded() {
        for i in 0..500 {
            let x = (i as f64) * 0.137 - 30.0;
            let y = (i as f64) * 0.291 - 70.0;
            let v = value_noise(x, y, 42);
            assert!((-1.0..=1.0).contains(&v), "noise {v} out of range at ({x},{y})");
        }
    }

    #[test]
    fn noise_equals_lattice_at_integers() {
        let v = value_noise(5.0, -3.0, 11);
        let w = value_noise(5.0 + 1e-12, -3.0 + 1e-12, 11);
        assert!((v - w).abs() < 1e-9);
    }

    #[test]
    fn noise_is_continuous() {
        // Adjacent samples differ by a small amount (no lattice seams).
        let mut prev = value_noise(0.0, 0.5, 3);
        for i in 1..=400 {
            let x = i as f64 * 0.01;
            let v = value_noise(x, 0.5, 3);
            assert!((v - prev).abs() < 0.1, "jump at x={x}");
            prev = v;
        }
    }

    #[test]
    fn fbm_is_bounded_and_deterministic() {
        for i in 0..200 {
            let x = i as f64 * 0.31;
            let v = fbm(x, -x, 5, 4, 0.5);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, fbm(x, -x, 5, 4, 0.5));
        }
    }

    #[test]
    fn ridged_is_bounded() {
        for i in 0..200 {
            let x = i as f64 * 0.17;
            let v = ridged(x, x * 0.5, 9, 4, 0.5);
            assert!((-1.0..=1.0).contains(&v), "ridged {v} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "at least one octave")]
    fn fbm_rejects_zero_octaves() {
        fbm(0.0, 0.0, 0, 0, 0.5);
    }
}
