//! The synthetic terrain model.

use crate::catalog::{Catalog, City, CityId};
use crate::noise::{fbm, ridged, value_noise};
use geoprim::{LatLon, LocalProjection};

/// Anything that maps coordinates to elevations in metres.
///
/// This is the seam between the attack pipeline and its elevation source:
/// the paper used the Google Maps Elevation API, this reproduction uses
/// [`SyntheticTerrain`], and a downstream user could plug in a DEM.
pub trait ElevationModel {
    /// Elevation in metres above sea level at `p`.
    fn elevation_at(&self, p: LatLon) -> f64;

    /// Batch lookup; the default maps [`ElevationModel::elevation_at`]
    /// over the slice.
    fn elevations(&self, points: &[LatLon]) -> Vec<f64> {
        points.iter().map(|p| self.elevation_at(*p)).collect()
    }
}

impl<T: ElevationModel + ?Sized> ElevationModel for &T {
    fn elevation_at(&self, p: LatLon) -> f64 {
        (**self).elevation_at(p)
    }
}

/// Deterministic procedural terrain over the standard [`Catalog`].
///
/// Elevation at a point is computed from the signature of the containing
/// (or nearest) city as
///
/// ```text
/// base + regional·noise(p / λ_regional) + relief·fbm(p / λ_hill)
/// ```
///
/// clamped at sea level. All noise is a pure function of the
/// construction seed, so two `SyntheticTerrain::new(s)` instances agree
/// everywhere.
///
/// # Examples
///
/// ```
/// use terrain::{ElevationModel, SyntheticTerrain};
/// use geoprim::LatLon;
///
/// let t = SyntheticTerrain::new(7);
/// let p = LatLon::new(37.76, -122.45); // San Francisco
/// assert_eq!(t.elevation_at(p), SyntheticTerrain::new(7).elevation_at(p));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTerrain {
    seed: u64,
    catalog: Catalog,
}

impl SyntheticTerrain {
    /// Creates terrain over [`Catalog::standard`] with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, catalog: Catalog::standard() }
    }

    /// Creates terrain over a custom catalog.
    pub fn with_catalog(seed: u64, catalog: Catalog) -> Self {
        Self { seed, catalog }
    }

    /// The seed this terrain was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The city/borough catalog backing this terrain.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn city_for(&self, p: LatLon) -> &City {
        self.catalog.city_at(p).unwrap_or_else(|| self.catalog.nearest_city(p))
    }

    fn city_seed(&self, id: CityId) -> u64 {
        // Stable per-city sub-seed: mix the discriminant into the seed.
        let idx = CityId::ALL.iter().position(|c| *c == id).unwrap_or(0) as u64;
        self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678)
    }

    /// Elevation decomposed into `(base, regional, hills)` components;
    /// useful for tests and for the ablation benches.
    pub fn components_at(&self, p: LatLon) -> (f64, f64, f64) {
        let city = self.city_for(p);
        let s = &city.signature;
        let proj = LocalProjection::new(city.bbox.center());
        let (x, y) = proj.to_meters(p);
        let cseed = self.city_seed(city.id);

        let regional = s.regional_relief_m
            * value_noise(
                x / s.regional_wavelength_m,
                y / s.regional_wavelength_m,
                cseed.wrapping_add(0x00A1_1CE5),
            );
        let hills = if s.ridged {
            s.relief_m
                * 0.5
                * ridged(x / s.hill_wavelength_m, y / s.hill_wavelength_m, cseed, s.octaves, s.gain)
        } else {
            s.relief_m
                * 0.5
                * fbm(x / s.hill_wavelength_m, y / s.hill_wavelength_m, cseed, s.octaves, s.gain)
        };
        (s.base_m, regional, hills)
    }
}

impl ElevationModel for SyntheticTerrain {
    fn elevation_at(&self, p: LatLon) -> f64 {
        let (base, regional, hills) = self.components_at(p);
        // Quantize to 1 cm, like a real elevation service interpolating a
        // finite-resolution DEM: discrete elevation values *repeat*, which
        // the paper's text encoding (unique-value codebook + n-gram
        // frequencies) implicitly relies on.
        let v = (base + regional + hills).max(0.0);
        (v * 100.0).round() / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::BoroughId;

    fn sample_city(t: &SyntheticTerrain, id: CityId, n: usize) -> Vec<f64> {
        let bbox = t.catalog().city(id).bbox;
        let mut out = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let lat = bbox.south_west().lat + bbox.lat_span() * (i as f64 + 0.5) / n as f64;
                let lon = bbox.south_west().lon + bbox.lon_span() * (j as f64 + 0.5) / n as f64;
                out.push(t.elevation_at(LatLon::new(lat, lon)));
            }
        }
        out
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn terrain_is_deterministic() {
        let a = SyntheticTerrain::new(99);
        let b = SyntheticTerrain::new(99);
        let p = LatLon::new(40.75, -73.98);
        assert_eq!(a.elevation_at(p), b.elevation_at(p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticTerrain::new(1);
        let b = SyntheticTerrain::new(2);
        let p = LatLon::new(40.75, -73.98);
        assert_ne!(a.elevation_at(p), b.elevation_at(p));
    }

    #[test]
    fn elevation_is_never_below_sea_level() {
        let t = SyntheticTerrain::new(5);
        for v in sample_city(&t, CityId::Miami, 20) {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn city_means_reflect_signatures() {
        let t = SyntheticTerrain::new(11);
        let miami = mean(&sample_city(&t, CityId::Miami, 12));
        let nyc = mean(&sample_city(&t, CityId::NewYorkCity, 12));
        let springs = mean(&sample_city(&t, CityId::ColoradoSprings, 12));
        let duluth = mean(&sample_city(&t, CityId::Duluth, 12));
        assert!(miami < 15.0, "miami mean {miami}");
        assert!(nyc < 80.0 && nyc > 1.0, "nyc mean {nyc}");
        assert!(springs > 1600.0, "springs mean {springs}");
        assert!(duluth > 150.0 && duluth < 450.0, "duluth mean {duluth}");
    }

    #[test]
    fn sf_is_rougher_than_miami() {
        let t = SyntheticTerrain::new(3);
        let var = |v: &[f64]| {
            let m = mean(v);
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        let sf = var(&sample_city(&t, CityId::SanFrancisco, 15));
        let mia = var(&sample_city(&t, CityId::Miami, 15));
        assert!(sf > 20.0 * mia, "sf var {sf}, miami var {mia}");
    }

    #[test]
    fn terrain_is_continuous_along_a_path() {
        let t = SyntheticTerrain::new(17);
        let start = LatLon::new(38.90, -77.04);
        let mut prev = t.elevation_at(start);
        for i in 1..200 {
            let p = start.offset_m(i as f64 * 10.0, i as f64 * 5.0);
            let e = t.elevation_at(p);
            assert!((e - prev).abs() < 20.0, "jump of {} m at step {i}", (e - prev).abs());
            prev = e;
        }
    }

    #[test]
    fn components_sum_to_elevation_when_positive() {
        // Up to the 1 cm DEM quantization.
        let t = SyntheticTerrain::new(23);
        let p = LatLon::new(38.85, -104.8);
        let (b, r, h) = t.components_at(p);
        assert!((t.elevation_at(p) - (b + r + h)).abs() <= 0.005 + 1e-9);
    }

    #[test]
    fn elevation_is_quantized_to_centimetres() {
        let t = SyntheticTerrain::new(23);
        for i in 0..50 {
            let p = LatLon::new(37.72 + i as f64 * 0.001, -122.45);
            let v = t.elevation_at(p);
            assert!(((v * 100.0).round() / 100.0 - v).abs() < 1e-9, "{v} not quantized");
        }
    }

    #[test]
    fn boroughs_of_nyc_share_the_city_signature() {
        // Borough samples must stay in the plausible NYC elevation band —
        // the within-city separability comes only from the weak regional
        // octave, not from distinct signatures.
        let t = SyntheticTerrain::new(31);
        for b in BoroughId::of_city(CityId::NewYorkCity) {
            let bbox = t.catalog().borough(b).bbox;
            let e = t.elevation_at(bbox.center());
            assert!((0.0..=120.0).contains(&e), "{b}: {e}");
        }
    }
}
