//! Property-based tests for the terrain substrate.

use geoprim::LatLon;
use proptest::prelude::*;
use terrain::{CityId, ElevationModel, ElevationService, SyntheticTerrain};

fn arb_us_point() -> impl Strategy<Value = LatLon> {
    // Continental-US-ish envelope covering all catalog cities.
    (25.0f64..47.0, -123.0f64..-73.0).prop_map(|(lat, lon)| LatLon::new(lat, lon))
}

proptest! {
    #[test]
    fn elevation_is_deterministic_and_sane(p in arb_us_point(), seed in 0u64..100) {
        let t = SyntheticTerrain::new(seed);
        let a = t.elevation_at(p);
        let b = SyntheticTerrain::new(seed).elevation_at(p);
        prop_assert_eq!(a, b);
        prop_assert!((0.0..9000.0).contains(&a), "elevation {a}");
    }

    #[test]
    fn elevation_is_quantized_to_centimetres(p in arb_us_point()) {
        let t = SyntheticTerrain::new(3);
        let e = t.elevation_at(p);
        prop_assert!(((e * 100.0).round() / 100.0 - e).abs() < 1e-9);
    }

    #[test]
    fn nearby_points_have_nearby_elevations(p in arb_us_point(),
                                            dx in -30.0f64..30.0, dy in -30.0f64..30.0) {
        let t = SyntheticTerrain::new(7);
        let q = p.offset_m(dx, dy);
        let de = (t.elevation_at(p) - t.elevation_at(q)).abs();
        // 30 m of horizontal distance cannot produce a cliff in fBm
        // terrain with ≥1 km wavelengths (generous bound incl. ridged).
        prop_assert!(de < 40.0, "Δe {de} over ~{:.0} m", (dx * dx + dy * dy).sqrt());
    }

    #[test]
    fn service_lookup_matches_model(points in prop::collection::vec(arb_us_point(), 1..50)) {
        let t = SyntheticTerrain::new(5);
        let service = ElevationService::new(SyntheticTerrain::new(5));
        let direct: Vec<f64> = points.iter().map(|p| t.elevation_at(*p)).collect();
        prop_assert_eq!(service.lookup(&points), direct);
    }

    #[test]
    fn sample_path_length_is_exact(
        a in arb_us_point(), b in arb_us_point(), n in 2usize..256) {
        let service = ElevationService::new(SyntheticTerrain::new(1));
        prop_assert_eq!(service.sample_path(&[a, b], n).len(), n);
    }

    #[test]
    fn city_lookup_is_total(p in arb_us_point()) {
        let t = SyntheticTerrain::new(1);
        // nearest_city never fails; city_at may be None outside boxes.
        let nearest = t.catalog().nearest_city(p).id;
        prop_assert!(CityId::ALL.contains(&nearest));
        if let Some(c) = t.catalog().city_at(p) {
            prop_assert!(c.bbox.contains(p));
        }
    }
}
