//! Survey population simulation (paper Fig. 1 and §I).
//!
//! The paper motivates the attack with an online survey of 60 fitness-
//! application users. The raw responses are not published, so this
//! crate models the population from the reported marginals and
//! regenerates the Fig. 1 tabulations from seeded samples:
//!
//! - **(a) starting point**: 51% home, 36% school, 3% work, 10% other
//!   ("90% of the participants indicated their start of activity is
//!   either home, school, or work");
//! - **(b) end point**: 76% home, and the remaining mass on
//!   school/work/other such that 98% end at home/school/work;
//! - **(c) privacy belief**: 42% think not sharing location implies
//!   privacy, 30% uncertain, 28% disagree;
//! - **map-hiding belief** (§I): 25 yes / 18 maybe / 17 no of 60 on
//!   whether hiding the map but sharing statistics protects privacy.
//!
//! # Examples
//!
//! ```
//! use surveysim::{Survey, PAPER_N};
//!
//! let survey = Survey::sample(PAPER_N, 42);
//! let fig1a = survey.start_point_percentages();
//! assert!((fig1a.iter().sum::<f64>() - 100.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The paper's number of survey participants.
pub const PAPER_N: usize = 60;

/// Where an activity starts or ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Place {
    Home,
    School,
    Work,
    Other,
}

impl Place {
    /// All places in Fig. 1 order.
    pub const ALL: [Place; 4] = [Place::Home, Place::School, Place::Work, Place::Other];
}

/// Three-way belief answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Belief {
    Yes,
    Maybe,
    No,
}

impl Belief {
    /// All beliefs in reporting order.
    pub const ALL: [Belief; 3] = [Belief::Yes, Belief::Maybe, Belief::No];
}

/// One simulated participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Participant {
    /// Usual starting point of outdoor activities.
    pub start: Place,
    /// Usual end point.
    pub end: Place,
    /// "Does not sharing location information imply privacy?"
    pub privacy_belief: Belief,
    /// "Is hiding the map and sharing only statistics enough?"
    pub map_hiding_belief: Belief,
}

/// The population marginals reported in the paper.
mod marginals {
    use super::{Belief, Place};

    pub const START: [(Place, f64); 4] = [
        (Place::Home, 0.51),
        (Place::School, 0.36),
        (Place::Work, 0.03),
        (Place::Other, 0.10),
    ];
    /// 76% home; school/work split to make home+school+work = 98%.
    pub const END: [(Place, f64); 4] = [
        (Place::Home, 0.76),
        (Place::School, 0.17),
        (Place::Work, 0.05),
        (Place::Other, 0.02),
    ];
    pub const PRIVACY: [(Belief, f64); 3] =
        [(Belief::Yes, 0.42), (Belief::Maybe, 0.30), (Belief::No, 0.28)];
    /// 25 / 18 / 17 of 60.
    pub const MAP_HIDING: [(Belief, f64); 3] = [
        (Belief::Yes, 25.0 / 60.0),
        (Belief::Maybe, 18.0 / 60.0),
        (Belief::No, 17.0 / 60.0),
    ];
}

fn draw<T: Copy, R: Rng + ?Sized>(rng: &mut R, dist: &[(T, f64)]) -> T {
    let total: f64 = dist.iter().map(|(_, p)| p).sum();
    let mut u = rng.gen_range(0.0..total);
    for &(v, p) in dist {
        if u < p {
            return v;
        }
        u -= p;
    }
    dist.last().expect("non-empty distribution").0
}

/// A sampled survey.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Survey {
    participants: Vec<Participant>,
}

impl Survey {
    /// Samples `n` participants from the paper's marginals.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one participant");
        let mut rng = StdRng::seed_from_u64(seed);
        let participants = (0..n)
            .map(|_| Participant {
                start: draw(&mut rng, &marginals::START),
                end: draw(&mut rng, &marginals::END),
                privacy_belief: draw(&mut rng, &marginals::PRIVACY),
                map_hiding_belief: draw(&mut rng, &marginals::MAP_HIDING),
            })
            .collect();
        Self { participants }
    }

    /// Wraps an explicit participant list (e.g. real survey responses).
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty.
    pub fn from_participants(participants: Vec<Participant>) -> Self {
        assert!(!participants.is_empty(), "need at least one participant");
        Self { participants }
    }

    /// The participants.
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Whether the survey is empty (never true for valid samples).
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    fn place_percentages(&self, get: impl Fn(&Participant) -> Place) -> [f64; 4] {
        let mut counts = [0usize; 4];
        for p in &self.participants {
            let idx = Place::ALL.iter().position(|&q| q == get(p)).expect("known place");
            counts[idx] += 1;
        }
        counts.map(|c| c as f64 * 100.0 / self.participants.len() as f64)
    }

    fn belief_percentages(&self, get: impl Fn(&Participant) -> Belief) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for p in &self.participants {
            let idx = Belief::ALL.iter().position(|&q| q == get(p)).expect("known belief");
            counts[idx] += 1;
        }
        counts.map(|c| c as f64 * 100.0 / self.participants.len() as f64)
    }

    /// Fig. 1(a): starting-point percentages `[home, school, work, other]`.
    pub fn start_point_percentages(&self) -> [f64; 4] {
        self.place_percentages(|p| p.start)
    }

    /// Fig. 1(b): end-point percentages `[home, school, work, other]`.
    pub fn end_point_percentages(&self) -> [f64; 4] {
        self.place_percentages(|p| p.end)
    }

    /// Fig. 1(c): privacy-belief percentages `[yes, maybe, no]`.
    pub fn privacy_belief_percentages(&self) -> [f64; 3] {
        self.belief_percentages(|p| p.privacy_belief)
    }

    /// §I: map-hiding-belief percentages `[yes, maybe, no]`.
    pub fn map_hiding_percentages(&self) -> [f64; 3] {
        self.belief_percentages(|p| p.map_hiding_belief)
    }

    /// Chi-square goodness-of-fit statistic of this sample's
    /// starting-point counts against the paper's reported marginals
    /// (3 degrees of freedom).
    ///
    /// A resample from the paper's own distribution should rarely exceed
    /// the 99% critical value (≈ 11.34) — the statistical check that the
    /// simulated population *is* the published one.
    pub fn start_point_chi_square(&self) -> f64 {
        let expected = [0.51, 0.36, 0.03, 0.10];
        let n = self.participants.len() as f64;
        let mut counts = [0.0f64; 4];
        for p in &self.participants {
            let idx = Place::ALL.iter().position(|&q| q == p.start).expect("known place");
            counts[idx] += 1.0;
        }
        counts
            .iter()
            .zip(expected)
            .map(|(&obs, frac)| {
                let exp = frac * n;
                (obs - exp) * (obs - exp) / exp
            })
            .sum()
    }

    /// The 99% critical value of χ² with 3 degrees of freedom, for use
    /// with [`Survey::start_point_chi_square`].
    pub const CHI2_3DF_99: f64 = 11.345;

    /// The paper's headline: fraction of activities anchored at
    /// home/school/work (start, end).
    pub fn anchored_fractions(&self) -> (f64, f64) {
        let anchored = |get: &dyn Fn(&Participant) -> Place| {
            self.participants
                .iter()
                .filter(|p| get(p) != Place::Other)
                .count() as f64
                / self.participants.len() as f64
        };
        (anchored(&|p| p.start), anchored(&|p| p.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(Survey::sample(60, 5), Survey::sample(60, 5));
    }

    #[test]
    fn percentages_sum_to_100() {
        let s = Survey::sample(60, 1);
        for sums in [
            s.start_point_percentages().iter().sum::<f64>(),
            s.end_point_percentages().iter().sum::<f64>(),
        ] {
            assert!((sums - 100.0).abs() < 1e-9);
        }
        assert!((s.privacy_belief_percentages().iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((s.map_hiding_percentages().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn large_samples_converge_to_paper_marginals() {
        let s = Survey::sample(60_000, 7);
        let start = s.start_point_percentages();
        assert!((start[0] - 51.0).abs() < 1.5, "home start {}", start[0]);
        assert!((start[1] - 36.0).abs() < 1.5, "school start {}", start[1]);
        let end = s.end_point_percentages();
        assert!((end[0] - 76.0).abs() < 1.5, "home end {}", end[0]);
        let privacy = s.privacy_belief_percentages();
        assert!((privacy[0] - 42.0).abs() < 1.5);
        let (a_start, a_end) = s.anchored_fractions();
        assert!((a_start - 0.90).abs() < 0.02);
        assert!((a_end - 0.98).abs() < 0.01);
    }

    #[test]
    fn paper_sized_sample_is_plausible() {
        let s = Survey::sample(PAPER_N, 3);
        assert_eq!(s.len(), 60);
        let start = s.start_point_percentages();
        // Small-sample noise, but home should dominate.
        assert!(start[0] > 30.0);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn rejects_empty_survey() {
        Survey::sample(0, 0);
    }

    #[test]
    fn chi_square_accepts_own_distribution() {
        // Resamples from the paper's marginals pass the 99% GOF test in
        // the overwhelming majority of seeds.
        let passes = (0..40)
            .filter(|&seed| {
                Survey::sample(PAPER_N, seed).start_point_chi_square() < Survey::CHI2_3DF_99
            })
            .count();
        assert!(passes >= 38, "only {passes}/40 passed");
    }

    #[test]
    fn chi_square_rejects_a_wrong_population() {
        // A survey where everyone starts at work is not the paper's
        // population.
        let base = Survey::sample(PAPER_N, 1);
        let everyone_at_work: Vec<Participant> = base
            .participants()
            .iter()
            .map(|p| Participant { start: Place::Work, ..*p })
            .collect();
        let s = Survey::from_participants(everyone_at_work);
        assert!(s.start_point_chi_square() > Survey::CHI2_3DF_99 * 10.0);
    }
}
