//! The seed-driven corruption plan.

/// One category of injectable corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A contiguous run of interior points dropped (GPS dropout).
    GpsGap,
    /// Isolated elevation outliers (barometric spikes).
    ElevationSpike,
    /// Elevations replaced by NaN (sensor NODATA).
    ElevationNan,
    /// A run of points duplicated in place (logger stutter).
    DuplicatePoints,
    /// Timestamps shuffled within a window (out-of-order upload).
    OutOfOrderTime,
    /// The serialized GPX cut short (interrupted export).
    TruncateBytes,
    /// Random bytes of the serialized GPX overwritten (bit rot).
    MangleBytes,
}

impl FaultKind {
    /// Every track-level fault kind, in canonical order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::GpsGap,
        FaultKind::ElevationSpike,
        FaultKind::ElevationNan,
        FaultKind::DuplicatePoints,
        FaultKind::OutOfOrderTime,
        FaultKind::TruncateBytes,
        FaultKind::MangleBytes,
    ];

    /// Stable lowercase name (used by `ELEV_FAULT_KINDS` and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::GpsGap => "gap",
            FaultKind::ElevationSpike => "spike",
            FaultKind::ElevationNan => "nan",
            FaultKind::DuplicatePoints => "dup",
            FaultKind::OutOfOrderTime => "ooo",
            FaultKind::TruncateBytes => "truncate",
            FaultKind::MangleBytes => "mangle",
        }
    }

    /// Parses a name produced by [`FaultKind::name`].
    pub fn from_name(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s.trim())
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic corruption plan.
///
/// `track_rate` is the probability that a given track is corrupted at
/// all; a corrupted track receives one or two of the enabled `kinds`.
/// All draws derive from `(seed, track index)`, so the same plan
/// corrupts the same tracks in the same way regardless of processing
/// order or thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed for every corruption decision.
    pub seed: u64,
    /// Probability a track is corrupted (0 disables track faults).
    pub track_rate: f64,
    /// Enabled track-fault kinds (empty also disables track faults).
    pub kinds: Vec<FaultKind>,
    /// Fraction of DEM cells replaced by NODATA voids.
    pub dem_void_rate: f64,
    /// Per-attempt transient failure probability of the elevation
    /// service facade.
    pub service_failure_rate: f64,
}

impl FaultPlan {
    /// The default fault seed (`ELEV_FAULT_SEED` overrides it).
    pub const DEFAULT_SEED: u64 = 0xFA17;

    /// A plan that injects nothing — the guaranteed clean path.
    pub fn none() -> Self {
        Self {
            seed: Self::DEFAULT_SEED,
            track_rate: 0.0,
            kinds: Vec::new(),
            dem_void_rate: 0.0,
            service_failure_rate: 0.0,
        }
    }

    /// A plan corrupting `rate` of tracks with every fault kind, and
    /// using `rate / 4` for DEM voids and service failures (those
    /// substrates degrade gracefully at much lower rates).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        Self {
            seed,
            track_rate: rate,
            kinds: if rate > 0.0 { FaultKind::ALL.to_vec() } else { Vec::new() },
            dem_void_rate: rate / 4.0,
            service_failure_rate: rate / 4.0,
        }
    }

    /// Builds a plan from the `ELEV_FAULT_*` environment knobs:
    ///
    /// - `ELEV_FAULT_RATE` — track corruption rate (default 0: no-op);
    /// - `ELEV_FAULT_SEED` — fault seed (default [`Self::DEFAULT_SEED`]);
    /// - `ELEV_FAULT_KINDS` — comma-separated subset of
    ///   `gap,spike,nan,dup,ooo,truncate,mangle` (default: all).
    ///
    /// Unparsable values fall back to their defaults; unknown kind
    /// names are ignored.
    pub fn from_env() -> Self {
        let rate = std::env::var("ELEV_FAULT_RATE")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|r| (0.0..=1.0).contains(r))
            .unwrap_or(0.0);
        let seed = std::env::var("ELEV_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(Self::DEFAULT_SEED);
        let mut plan = Self::uniform(rate, seed);
        if let Ok(kinds) = std::env::var("ELEV_FAULT_KINDS") {
            plan.kinds = kinds.split(',').filter_map(FaultKind::from_name).collect();
        }
        plan
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_noop(&self) -> bool {
        (self.track_rate == 0.0 || self.kinds.is_empty())
            && self.dem_void_rate == 0.0
            && self.service_failure_rate == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_noop() {
        assert!(FaultPlan::none().is_noop());
        assert!(FaultPlan::uniform(0.0, 1).is_noop());
        assert!(!FaultPlan::uniform(0.2, 1).is_noop());
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn uniform_rejects_bad_rate() {
        FaultPlan::uniform(1.5, 0);
    }
}
