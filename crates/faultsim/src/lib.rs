//! Deterministic fault injection for the elevation-attack pipeline.
//!
//! Real fitness exports are messy: GPS receivers drop out under tree
//! cover, barometric altimeters spike, export tools truncate files, and
//! elevation APIs fail transiently. The paper's evaluation (and the
//! companion studies it cites) measure attack accuracy on *clean*
//! corpora; this crate makes the degraded regime reproducible by
//! injecting configurable corruption into the synthetic substrate under
//! a seed-driven [`FaultPlan`]:
//!
//! - **track faults** ([`corrupt_track`]): GPS gaps, elevation spikes,
//!   NaN elevations, duplicated points, out-of-order timestamps, and
//!   byte-level truncation/mangling of the serialized GPX;
//! - **DEM voids** ([`dem::punch_voids`]): SRTM-style NODATA holes in a
//!   raster grid;
//! - **flaky elevation service** ([`FlakyElevationService`]): transient
//!   per-request failures with deterministic retry/backoff accounting;
//! - **connection faults** ([`netfault`]): seed-indexed partial
//!   writes, injected delays, mid-body cuts/resets and slowloris
//!   header drip applied to any `Read + Write` stream via
//!   [`FlakyConn`] under a [`NetFaultPlan`].
//!
//! Every decision derives from `(plan seed, stable index)` through
//! [`exec::mix_seed`], never from shared mutable state, so a fixed
//! `(seed, FaultPlan)` pair produces bit-identical corruption at any
//! thread count, and a plan with rate 0 ([`FaultPlan::none`]) is a
//! guaranteed no-op.
//!
//! # Examples
//!
//! ```
//! use faultsim::{corrupt_track, FaultPlan, Payload};
//! use gpxfile::Gpx;
//!
//! let gpx = Gpx::parse(r#"<gpx creator="t"><trk><trkseg>
//!     <trkpt lat="1" lon="1"><ele>5</ele></trkpt>
//!     <trkpt lat="1.001" lon="1"><ele>6</ele></trkpt>
//! </trkseg></trk></gpx>"#).unwrap();
//! let clean = corrupt_track(&FaultPlan::none(), 0, &gpx);
//! assert!(clean.injected.is_empty());
//! match clean.payload {
//!     Payload::Parsed(g) => assert_eq!(g, gpx),
//!     Payload::Raw(_) => unreachable!("rate 0 never mangles bytes"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dem;
mod flaky;
mod inject;
pub mod netfault;
mod plan;

pub use flaky::{FlakyElevationService, FlakyStats, ServiceError};
pub use inject::{corrupt_track, synth_timestamp, CorruptedTrack, Payload};
pub use netfault::{ConnScript, FlakyConn, NetFaultKind, NetFaultPlan, SendOutcome, Teardown};
pub use plan::{FaultKind, FaultPlan};

/// A deterministic uniform draw in `[0, 1)` from `(seed, a, b)`.
///
/// Used for per-cell / per-attempt decisions where constructing a full
/// RNG would be wasteful. Stable across platforms and thread counts.
pub fn unit_hash(seed: u64, a: u64, b: u64) -> f64 {
    let z = exec::mix_seed(exec::mix_seed(seed, a), b);
    // 53 high bits → uniform double in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hash_is_in_range_and_stable() {
        for i in 0..1000 {
            let u = unit_hash(42, i, 7);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit_hash(42, i, 7));
        }
    }

    #[test]
    fn unit_hash_looks_uniform() {
        let n = 10_000;
        let mean = (0..n).map(|i| unit_hash(9, i, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
