//! Deterministic connection-fault injection: the transport-layer twin
//! of [`FaultPlan`](crate::FaultPlan).
//!
//! The payload substrate corrupts GPX *bytes*; this module corrupts
//! the *delivery* of bytes over a connection — partial writes, injected
//! delays, mid-body cuts and resets, and slowloris-style header drip.
//! Every decision is a pure function of `(seed, conn_index, op_index)`
//! through the same [`unit_hash`](crate::unit_hash) mixing, so a chaos
//! campaign's connection `i` misbehaves identically at any client
//! thread count and on every re-run: a failing connection index is a
//! complete bug report.
//!
//! The plan is transport-agnostic. [`NetFaultPlan::script`] reduces a
//! connection index to a [`ConnScript`] — what to cut, how to chunk,
//! when to stall — and [`FlakyConn`] applies that script to any
//! `Read + Write` stream. Teardown semantics that only exist on real
//! sockets (FIN vs RST) are described by [`Teardown`] and left to the
//! caller, so the module never depends on `std::net`.

use crate::unit_hash;
use std::io::{Read, Write};
use std::time::Duration;

/// One category of injectable connection misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetFaultKind {
    /// Request bytes delivered in small random chunks (partial writes).
    Chop,
    /// Slowloris: the head dripped one–three bytes at a time with
    /// per-op delays.
    Drip,
    /// A single injected stall before the request is sent.
    Delay,
    /// Delivery stops mid-head, then a clean FIN.
    CutHead,
    /// Delivery stops mid-body, then a clean FIN.
    CutBody,
    /// Delivery stops mid-body, then an abortive reset (RST).
    ResetBody,
    /// The response is read one byte at a time with per-op delays
    /// (a slow reader on the server's write side).
    SlowRead,
}

impl NetFaultKind {
    /// Every connection-fault kind, in canonical order.
    pub const ALL: [NetFaultKind; 7] = [
        NetFaultKind::Chop,
        NetFaultKind::Drip,
        NetFaultKind::Delay,
        NetFaultKind::CutHead,
        NetFaultKind::CutBody,
        NetFaultKind::ResetBody,
        NetFaultKind::SlowRead,
    ];

    /// Stable lowercase name (histogram keys, logs).
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::Chop => "chop",
            NetFaultKind::Drip => "drip",
            NetFaultKind::Delay => "delay",
            NetFaultKind::CutHead => "cut_head",
            NetFaultKind::CutBody => "cut_body",
            NetFaultKind::ResetBody => "reset_body",
            NetFaultKind::SlowRead => "slow_read",
        }
    }
}

impl std::fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a faulted connection ends once its script says to stop sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Teardown {
    /// Orderly shutdown of the write side (the peer reads EOF).
    Fin,
    /// Abortive close (`SO_LINGER 0` on a real socket: the peer reads
    /// a connection reset).
    Reset,
}

/// A deterministic connection-fault plan.
///
/// `rate` is the probability a given connection is faulted at all; a
/// faulted connection receives exactly one of the enabled `kinds`.
/// All draws derive from `(seed, conn_index, op_index)`, so the same
/// plan misbehaves identically regardless of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Master seed for every connection-fault decision.
    pub seed: u64,
    /// Probability a connection is faulted (0 disables the substrate).
    pub rate: f64,
    /// Enabled fault kinds (empty also disables the substrate).
    pub kinds: Vec<NetFaultKind>,
    /// Upper bound on any single injected stall, in microseconds.
    /// Chaos campaigns keep this far below the server's deadlines so
    /// fault outcomes stay deterministic.
    pub max_delay_micros: u64,
}

impl NetFaultPlan {
    /// A plan that faults `rate` of connections with every kind.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "net fault rate must be in [0, 1]");
        Self {
            seed,
            rate,
            kinds: if rate > 0.0 { NetFaultKind::ALL.to_vec() } else { Vec::new() },
            max_delay_micros: 500,
        }
    }

    /// Reduces connection `conn_index` to its full fault script, given
    /// the byte layout of the request it will carry (`head_len` =
    /// offset just past the head terminator, `total_len` = head +
    /// body). Pure in `(seed, conn_index)`.
    pub fn script(&self, conn_index: u64, head_len: usize, total_len: usize) -> ConnScript {
        let draw = |op: u64| unit_hash(self.seed, conn_index, op);
        let base = ConnScript {
            seed: self.seed,
            conn_index,
            kind: None,
            cut: None,
            teardown: Teardown::Fin,
            max_delay_micros: self.max_delay_micros,
        };
        if self.kinds.is_empty() || draw(0) >= self.rate {
            return base;
        }
        let kind = self.kinds[(draw(1) * self.kinds.len() as f64) as usize % self.kinds.len()];
        let in_range = |lo: usize, hi: usize, u: f64| {
            // A draw mapped into [lo, hi); hi > lo is guaranteed by the
            // callers (requests always have a non-empty head and body).
            lo + ((u * (hi - lo) as f64) as usize).min(hi - lo - 1)
        };
        let (cut, teardown) = match kind {
            NetFaultKind::CutHead => {
                // 0 included: a connection that sends nothing at all.
                (Some(in_range(0, head_len.max(1), draw(2))), Teardown::Fin)
            }
            NetFaultKind::CutBody if total_len > head_len => {
                (Some(in_range(head_len, total_len, draw(2))), Teardown::Fin)
            }
            NetFaultKind::ResetBody if total_len > head_len => {
                (Some(in_range(head_len, total_len, draw(2))), Teardown::Reset)
            }
            _ => (None, Teardown::Fin),
        };
        ConnScript { kind: Some(kind), cut, teardown, ..base }
    }
}

/// Everything one connection will do wrong, reduced from the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnScript {
    seed: u64,
    conn_index: u64,
    /// The selected fault kind; `None` for a clean connection.
    pub kind: Option<NetFaultKind>,
    /// Byte offset (into the request stream) where delivery stops;
    /// `None` delivers everything.
    pub cut: Option<usize>,
    /// How the connection ends after a cut.
    pub teardown: Teardown,
    max_delay_micros: u64,
}

impl ConnScript {
    /// Whether this connection behaves perfectly.
    pub fn is_clean(&self) -> bool {
        self.kind.is_none()
    }

    /// Per-op draw stream, disjoint from the plan-level draws (ops 0–2).
    fn op_draw(&self, op: u64) -> f64 {
        unit_hash(self.seed, self.conn_index, 16 + op)
    }

    /// Write chunk size for write op `op` when `remaining` bytes are
    /// still undelivered and `in_head` says whether the cursor is
    /// before the head terminator.
    pub fn write_chunk_len(&self, op: u64, remaining: usize, in_head: bool) -> usize {
        let max = match self.kind {
            // Slowloris drips the head a byte or three at a time; once
            // past the head it stops stalling.
            Some(NetFaultKind::Drip) if in_head => 3,
            Some(NetFaultKind::Chop) => 64,
            Some(NetFaultKind::CutHead | NetFaultKind::CutBody | NetFaultKind::ResetBody) => 64,
            _ => return remaining,
        };
        (1 + (self.op_draw(op) * max as f64) as usize).min(remaining.max(1))
    }

    /// Injected stall before op `op` (zero for most ops).
    pub fn delay(&self, op: u64, in_head: bool) -> Duration {
        let stall = match self.kind {
            Some(NetFaultKind::Drip) if in_head => self.op_draw(op ^ 0x5151) < 0.25,
            Some(NetFaultKind::Delay) => op == 0,
            Some(NetFaultKind::SlowRead) => self.op_draw(op ^ 0x5151) < 0.10,
            _ => false,
        };
        if stall {
            let micros = (self.op_draw(op ^ 0xDE1A) * self.max_delay_micros as f64) as u64;
            Duration::from_micros(micros)
        } else {
            Duration::ZERO
        }
    }

    /// Response read chunk size for read op `op`.
    pub fn read_chunk_len(&self, op: u64, want: usize) -> usize {
        match self.kind {
            Some(NetFaultKind::SlowRead) => 1 + (self.op_draw(op ^ 0x3EAD) * 3.0) as usize,
            _ => want.max(1),
        }
        .min(want.max(1))
    }
}

/// Outcome of pushing a request through a faulted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Every byte was delivered.
    Delivered,
    /// Delivery stopped at this offset (the script's cut).
    Cut {
        /// Bytes actually delivered before the cut.
        at: usize,
    },
}

/// A `Read + Write` stream with a [`ConnScript`] applied to it.
///
/// Writes are chunked, delayed, and cut per the script; reads are
/// chunked and delayed. The wrapper owns an op counter shared by both
/// directions, so the full I/O schedule of a connection is a pure
/// function of `(seed, conn_index)`.
#[derive(Debug)]
pub struct FlakyConn<S> {
    stream: S,
    script: ConnScript,
    /// Bytes of the request stream delivered so far.
    sent: usize,
    /// Monotonic I/O op counter (draw index for chunk/delay decisions).
    ops: u64,
}

impl<S: Read + Write> FlakyConn<S> {
    /// Wraps `stream` under `script`.
    pub fn new(stream: S, script: ConnScript) -> Self {
        Self { stream, script, sent: 0, ops: 0 }
    }

    /// The wrapped stream (for teardown actions the caller applies).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// The script this connection runs.
    pub fn script(&self) -> &ConnScript {
        &self.script
    }

    /// Sends `buf` (the next slice of the request stream) through the
    /// script: chunked, delayed, and stopped at the cut offset.
    /// `head_len` is the request's head length, so the script knows
    /// which ops are "in the head".
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn send(&mut self, buf: &[u8], head_len: usize) -> std::io::Result<SendOutcome> {
        let mut offset = 0usize;
        while offset < buf.len() {
            if let Some(cut) = self.script.cut {
                if self.sent >= cut {
                    return Ok(SendOutcome::Cut { at: self.sent });
                }
            }
            let in_head = self.sent < head_len;
            let remaining = buf.len() - offset;
            let mut n = self.script.write_chunk_len(self.ops, remaining, in_head);
            if let Some(cut) = self.script.cut {
                n = n.min(cut - self.sent);
                if n == 0 {
                    return Ok(SendOutcome::Cut { at: self.sent });
                }
            }
            let stall = self.script.delay(self.ops, in_head);
            if !stall.is_zero() {
                std::thread::sleep(stall);
            }
            self.ops += 1;
            self.stream.write_all(&buf[offset..offset + n])?;
            offset += n;
            self.sent += n;
        }
        if let Some(cut) = self.script.cut {
            if self.sent >= cut {
                return Ok(SendOutcome::Cut { at: self.sent });
            }
        }
        self.stream.flush()?;
        Ok(SendOutcome::Delivered)
    }

    /// Reads the peer's response to EOF through the script's read
    /// chunking/delays.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn recv_to_end(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            let want = self.script.read_chunk_len(self.ops, chunk.len());
            let stall = self.script.delay(self.ops, false);
            if !stall.is_zero() {
                std::thread::sleep(stall);
            }
            self.ops += 1;
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => return Ok(out),
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The request layout every test uses: 40-byte head, 60-byte body.
    const HEAD: usize = 40;
    const TOTAL: usize = 100;

    fn request() -> Vec<u8> {
        (0..TOTAL as u8).collect()
    }

    #[test]
    fn zero_rate_is_always_clean() {
        let plan = NetFaultPlan::uniform(0.0, 7);
        for i in 0..200 {
            assert!(plan.script(i, HEAD, TOTAL).is_clean());
        }
    }

    #[test]
    fn scripts_are_deterministic_and_vary() {
        let plan = NetFaultPlan::uniform(1.0, 9);
        let kinds: Vec<_> = (0..500).map(|i| plan.script(i, HEAD, TOTAL).kind).collect();
        let again: Vec<_> = (0..500).map(|i| plan.script(i, HEAD, TOTAL).kind).collect();
        assert_eq!(kinds, again, "scripts must be pure in (seed, conn_index)");
        for kind in NetFaultKind::ALL {
            assert!(kinds.contains(&Some(kind)), "rate 1.0 over 500 conns must draw {kind}");
        }
    }

    #[test]
    fn cuts_respect_their_regions() {
        let plan = NetFaultPlan::uniform(1.0, 11);
        for i in 0..2000 {
            let s = plan.script(i, HEAD, TOTAL);
            match s.kind {
                Some(NetFaultKind::CutHead) => {
                    assert!(s.cut.expect("cut") < HEAD);
                    assert_eq!(s.teardown, Teardown::Fin);
                }
                Some(NetFaultKind::CutBody) => {
                    let at = s.cut.expect("cut");
                    assert!((HEAD..TOTAL).contains(&at));
                    assert_eq!(s.teardown, Teardown::Fin);
                }
                Some(NetFaultKind::ResetBody) => {
                    let at = s.cut.expect("cut");
                    assert!((HEAD..TOTAL).contains(&at));
                    assert_eq!(s.teardown, Teardown::Reset);
                }
                _ => assert_eq!(s.cut, None),
            }
        }
    }

    /// An in-memory duplex: writes land in a buffer, reads drain a
    /// scripted response.
    struct Loop {
        written: Vec<u8>,
        response: std::io::Cursor<Vec<u8>>,
    }

    impl Read for Loop {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.response.read(buf)
        }
    }

    impl Write for Loop {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn delivered_bytes_are_identical_whatever_the_chunking() {
        let plan = NetFaultPlan {
            max_delay_micros: 0, // keep the test instant
            ..NetFaultPlan::uniform(1.0, 13)
        };
        let req = request();
        let mut delivered_full = 0usize;
        for i in 0..300 {
            let script = plan.script(i, HEAD, TOTAL);
            let cut = script.cut;
            let mut conn = FlakyConn::new(
                Loop { written: Vec::new(), response: std::io::Cursor::new(vec![1, 2, 3]) },
                script,
            );
            let outcome = conn.send(&req, HEAD).expect("in-memory send");
            match (outcome, cut) {
                (SendOutcome::Delivered, None) => {
                    assert_eq!(conn.get_ref().written, req, "conn {i}: bytes mangled");
                    delivered_full += 1;
                }
                (SendOutcome::Cut { at }, Some(cut)) => {
                    assert_eq!(at, cut, "conn {i}: cut at the wrong offset");
                    assert_eq!(conn.get_ref().written, &req[..cut], "conn {i}: prefix mangled");
                }
                (outcome, cut) => panic!("conn {i}: outcome {outcome:?} vs scripted cut {cut:?}"),
            }
            assert_eq!(conn.recv_to_end().expect("recv"), vec![1, 2, 3]);
        }
        assert!(delivered_full > 0, "some faulted connections still deliver everything");
    }

    #[test]
    #[should_panic(expected = "net fault rate")]
    fn uniform_rejects_bad_rate() {
        NetFaultPlan::uniform(1.5, 0);
    }
}
