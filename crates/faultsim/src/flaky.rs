//! A transiently failing elevation-service facade with deterministic
//! retry/backoff.

use crate::unit_hash;
use geoprim::LatLon;
use std::cell::Cell;
use terrain::{ElevationModel, ElevationService};

/// Error from an exhausted retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Which logical request failed (0-based counter).
    pub request: u64,
    /// Attempts made (initial try + retries).
    pub attempts: u32,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "elevation request {} failed after {} attempts",
            self.request, self.attempts
        )
    }
}

impl std::error::Error for ServiceError {}

/// Accounting for a [`FlakyElevationService`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlakyStats {
    /// Logical requests issued by callers.
    pub requests: u64,
    /// Attempts that failed transiently and were retried (or gave up).
    pub transient_failures: u64,
    /// Requests that exhausted the retry budget.
    pub exhausted: u64,
    /// Simulated backoff consumed, in abstract units (1 + 2 + 4 + … per
    /// retried request — no real sleeping happens).
    pub backoff_units: u64,
}

/// Wraps [`terrain::ElevationService`] with deterministic transient
/// failures and exponential-backoff retries.
///
/// Whether attempt `a` of logical request `k` fails is a pure function
/// of `(seed, k, a)`, so a run's failure pattern is bit-identical
/// across thread counts and re-runs. Backoff is *simulated*: rather
/// than sleeping, the facade accrues `2^retry` abstract units into
/// [`FlakyStats::backoff_units`], which keeps experiments fast while
/// still exercising (and accounting for) the retry path.
///
/// # Examples
///
/// ```
/// use faultsim::FlakyElevationService;
/// use geoprim::LatLon;
/// use terrain::SyntheticTerrain;
///
/// let svc = FlakyElevationService::new(SyntheticTerrain::new(1), 0.3, 9);
/// let profile = svc.lookup(&[LatLon::new(38.89, -77.05)]).unwrap();
/// assert_eq!(profile.len(), 1);
/// ```
#[derive(Debug)]
pub struct FlakyElevationService<M> {
    inner: ElevationService<M>,
    failure_rate: f64,
    seed: u64,
    max_retries: u32,
    counter: Cell<u64>,
    stats: Cell<FlakyStats>,
}

impl<M: ElevationModel> FlakyElevationService<M> {
    /// Default retry budget (initial attempt + 4 retries).
    pub const DEFAULT_MAX_RETRIES: u32 = 4;

    /// Wraps a model with per-attempt failure probability
    /// `failure_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `failure_rate` is outside `[0, 1)` (a rate of 1 could
    /// never succeed).
    pub fn new(model: M, failure_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&failure_rate),
            "failure rate must be in [0, 1)"
        );
        Self {
            inner: ElevationService::new(model),
            failure_rate,
            seed,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            counter: Cell::new(0),
            stats: Cell::new(FlakyStats::default()),
        }
    }

    /// Overrides the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Accumulated accounting.
    pub fn stats(&self) -> FlakyStats {
        self.stats.get()
    }

    /// The wrapped service (for its own request accounting).
    pub fn inner(&self) -> &ElevationService<M> {
        &self.inner
    }

    /// Runs one logical request through the failure/retry schedule.
    fn attempt<T>(&self, f: impl Fn() -> T) -> Result<T, ServiceError> {
        let request = self.counter.get();
        self.counter.set(request + 1);
        let mut stats = self.stats.get();
        stats.requests += 1;
        let budget = self.max_retries + 1;
        for attempt in 0..budget {
            if unit_hash(self.seed, request, attempt as u64) >= self.failure_rate {
                if attempt > 0 {
                    stats.backoff_units += (1u64 << attempt) - 1;
                }
                self.stats.set(stats);
                return Ok(f());
            }
            stats.transient_failures += 1;
        }
        stats.backoff_units += (1u64 << budget) - 1;
        stats.exhausted += 1;
        self.stats.set(stats);
        Err(ServiceError { request, attempts: budget })
    }

    /// Resolves elevations for explicit locations, retrying transient
    /// failures with exponential backoff.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the retry budget is exhausted.
    pub fn lookup(&self, points: &[LatLon]) -> Result<Vec<f64>, ServiceError> {
        self.attempt(|| self.inner.lookup(points))
    }

    /// Samples `n` equally spaced elevations along a polyline path,
    /// with the same retry behaviour as [`Self::lookup`].
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the retry budget is exhausted.
    pub fn sample_path(&self, path: &[LatLon], n: usize) -> Result<Vec<f64>, ServiceError> {
        self.attempt(|| self.inner.sample_path(path, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terrain::SyntheticTerrain;

    fn point() -> Vec<LatLon> {
        vec![LatLon::new(28.5, -81.4)]
    }

    #[test]
    fn zero_rate_never_fails_or_retries() {
        let svc = FlakyElevationService::new(SyntheticTerrain::new(1), 0.0, 7);
        for _ in 0..100 {
            svc.lookup(&point()).unwrap();
        }
        let s = svc.stats();
        assert_eq!(s.requests, 100);
        assert_eq!(s.transient_failures, 0);
        assert_eq!(s.exhausted, 0);
        assert_eq!(s.backoff_units, 0);
    }

    #[test]
    fn results_match_the_reliable_service() {
        let flaky = FlakyElevationService::new(SyntheticTerrain::new(3), 0.4, 11);
        let reliable = ElevationService::new(SyntheticTerrain::new(3));
        let path = vec![LatLon::new(38.89, -77.05), LatLon::new(38.92, -77.0)];
        for _ in 0..20 {
            if let Ok(profile) = flaky.sample_path(&path, 40) {
                assert_eq!(profile, reliable.sample_path(&path, 40));
            }
        }
        assert!(flaky.stats().transient_failures > 0, "rate 0.4 must fail sometimes");
    }

    #[test]
    fn failure_schedule_is_deterministic() {
        let run = || {
            let svc = FlakyElevationService::new(SyntheticTerrain::new(5), 0.6, 13)
                .with_max_retries(2);
            let outcomes: Vec<bool> =
                (0..200).map(|_| svc.lookup(&point()).is_ok()).collect();
            (outcomes, svc.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn high_rate_exhausts_some_requests() {
        let svc =
            FlakyElevationService::new(SyntheticTerrain::new(2), 0.9, 17).with_max_retries(1);
        let failures = (0..200).filter(|_| svc.lookup(&point()).is_err()).count();
        assert!(failures > 100, "rate 0.9 with 2 attempts should usually exhaust");
        let s = svc.stats();
        assert_eq!(s.exhausted, failures as u64);
        assert!(s.backoff_units > 0);
    }

    #[test]
    #[should_panic(expected = "failure rate")]
    fn rejects_certain_failure() {
        FlakyElevationService::new(SyntheticTerrain::new(1), 1.0, 0);
    }
}
