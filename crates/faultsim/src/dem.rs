//! SRTM-style NODATA voids in raster DEMs, and their repair.
//!
//! Real elevation rasters ship with voids — radar shadow in SRTM,
//! cloud cover in ASTER — marked with a sentinel value rather than NaN.
//! [`punch_voids`] reproduces that failure mode deterministically;
//! [`fill_voids`] is the standard iterative neighbour-mean repair a
//! production ingester would apply before serving lookups.

use crate::unit_hash;
use terrain::RasterDem;

/// The SRTM NODATA sentinel (finite, so it survives grid validation —
/// exactly why real pipelines must check for it explicitly).
pub const DEM_NODATA_M: f64 = -32_768.0;

/// Replaces `rate` of the grid's cells with [`DEM_NODATA_M`],
/// deterministically in `(seed, cell index)`. Returns the voided DEM
/// and the number of cells punched.
///
/// # Panics
///
/// Panics if `rate` is outside `[0, 1]`.
pub fn punch_voids(dem: &RasterDem, rate: f64, seed: u64) -> (RasterDem, usize) {
    assert!((0.0..=1.0).contains(&rate), "void rate must be in [0, 1]");
    let (rows, cols) = dem.dims();
    let mut values = Vec::with_capacity(rows * cols);
    let mut punched = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            let idx = (r * cols + c) as u64;
            if rate > 0.0 && unit_hash(seed, idx, 0x0DE4) < rate {
                values.push(DEM_NODATA_M);
                punched += 1;
            } else {
                values.push(dem.cell(r, c));
            }
        }
    }
    (RasterDem::new(dem.bbox(), rows, cols, values), punched)
}

/// Counts cells holding the NODATA sentinel.
pub fn void_count(dem: &RasterDem) -> usize {
    let (rows, cols) = dem.dims();
    (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .filter(|&(r, c)| dem.cell(r, c) == DEM_NODATA_M)
        .count()
}

/// Fills NODATA voids by iterated averaging of valid 4-neighbours,
/// sweeping until every void is filled (each sweep reads the previous
/// sweep's grid, so the result is independent of traversal order).
/// Returns the repaired DEM and the number of cells filled.
///
/// A grid that is *entirely* void has no valid boundary to grow from
/// and is returned unchanged — callers should treat a nonzero
/// [`void_count`] after filling as a quarantine condition.
pub fn fill_voids(dem: &RasterDem) -> (RasterDem, usize) {
    let (rows, cols) = dem.dims();
    let mut grid: Vec<f64> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| dem.cell(r, c))).collect();
    let total_voids = grid.iter().filter(|&&v| v == DEM_NODATA_M).count();
    if total_voids == 0 || total_voids == grid.len() {
        return (dem.clone(), 0);
    }
    let mut remaining = total_voids;
    while remaining > 0 {
        let prev = grid.clone();
        let mut progressed = false;
        for r in 0..rows {
            for c in 0..cols {
                if prev[r * cols + c] != DEM_NODATA_M {
                    continue;
                }
                let mut sum = 0.0;
                let mut n = 0usize;
                let mut push = |rr: usize, cc: usize| {
                    let v = prev[rr * cols + cc];
                    if v != DEM_NODATA_M {
                        sum += v;
                        n += 1;
                    }
                };
                if r > 0 {
                    push(r - 1, c);
                }
                if r + 1 < rows {
                    push(r + 1, c);
                }
                if c > 0 {
                    push(r, c - 1);
                }
                if c + 1 < cols {
                    push(r, c + 1);
                }
                if n > 0 {
                    grid[r * cols + c] = sum / n as f64;
                    remaining -= 1;
                    progressed = true;
                }
            }
        }
        debug_assert!(progressed, "a partially void grid always has a frontier");
        if !progressed {
            break;
        }
    }
    (
        RasterDem::new(dem.bbox(), rows, cols, grid),
        total_voids - remaining,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoprim::{BoundingBox, LatLon};
    use terrain::{CityId, ElevationModel, SyntheticTerrain};

    fn miami_dem() -> RasterDem {
        let t = SyntheticTerrain::new(5);
        let bbox = t.catalog().city(CityId::Miami).bbox;
        RasterDem::sample_from(&t, bbox, 40, 40)
    }

    #[test]
    fn zero_rate_is_identity() {
        let dem = miami_dem();
        let (voided, punched) = punch_voids(&dem, 0.0, 3);
        assert_eq!(punched, 0);
        assert_eq!(voided, dem);
    }

    #[test]
    fn punching_is_deterministic_and_proportional() {
        let dem = miami_dem();
        let (a, punched_a) = punch_voids(&dem, 0.1, 9);
        let (b, punched_b) = punch_voids(&dem, 0.1, 9);
        assert_eq!(a, b);
        assert_eq!(punched_a, punched_b);
        assert_eq!(void_count(&a), punched_a);
        let expected = (40.0f64 * 40.0 * 0.1) as isize;
        assert!(
            ((punched_a as isize) - expected).abs() < 60,
            "punched {punched_a}, expected ~{expected}"
        );
    }

    #[test]
    fn fill_removes_all_voids_and_stays_close() {
        let dem = miami_dem();
        let (voided, punched) = punch_voids(&dem, 0.15, 21);
        let (filled, repaired) = fill_voids(&voided);
        assert_eq!(repaired, punched);
        assert_eq!(void_count(&filled), 0);
        // The repaired surface tracks the original smooth terrain.
        let bbox = dem.bbox();
        let mut worst: f64 = 0.0;
        for i in 1..30 {
            let p = LatLon::new(
                bbox.south_west().lat + bbox.lat_span() * i as f64 / 31.0,
                bbox.south_west().lon + bbox.lon_span() * i as f64 / 31.0,
            );
            worst = worst.max((filled.elevation_at(p) - dem.elevation_at(p)).abs());
        }
        assert!(worst < 10.0, "repair deviates by {worst} m");
    }

    #[test]
    fn fully_void_grid_is_left_for_quarantine() {
        let bbox = BoundingBox::new(LatLon::new(0.0, 0.0), LatLon::new(1.0, 1.0));
        let dem = RasterDem::new(bbox, 2, 2, vec![DEM_NODATA_M; 4]);
        let (out, repaired) = fill_voids(&dem);
        assert_eq!(repaired, 0);
        assert_eq!(void_count(&out), 4);
    }

    #[test]
    fn clean_grid_fill_is_identity() {
        let dem = miami_dem();
        let (out, repaired) = fill_voids(&dem);
        assert_eq!(repaired, 0);
        assert_eq!(out, dem);
    }
}
