//! Per-track corruption of parsed GPX documents and their bytes.

use crate::plan::{FaultKind, FaultPlan};
use gpxfile::{Gpx, TrackPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the downstream ingestion layer receives for one track.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A parsed document (possibly carrying model-level corruption:
    /// gaps, spikes, NaN elevations, duplicates, shuffled timestamps).
    Parsed(Gpx),
    /// Raw serialized bytes (byte-level corruption may have made them
    /// unparsable or even invalid UTF-8).
    Raw(Vec<u8>),
}

/// The result of [`corrupt_track`]: the payload plus ground truth about
/// which faults were injected, so robustness reports can account for
/// every one.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptedTrack {
    /// The (possibly corrupted) track data.
    pub payload: Payload,
    /// Fault kinds actually applied, in canonical order. Empty for a
    /// clean track.
    pub injected: Vec<FaultKind>,
}

/// Minimum segment length eligible for structural corruption; shorter
/// segments pass through untouched (there is nothing to hide a gap or
/// a shuffle in).
const MIN_CORRUPTIBLE_POINTS: usize = 8;

/// Corrupts one track under a plan, deterministically in
/// `(plan.seed, index)`.
///
/// A track escaping corruption (rate 0, losing the coin flip, or all
/// segments shorter than [`MIN_CORRUPTIBLE_POINTS`]) is returned as a
/// byte-identical [`Payload::Parsed`] clone with no injected faults.
pub fn corrupt_track(plan: &FaultPlan, index: u64, gpx: &Gpx) -> CorruptedTrack {
    let mut rng = StdRng::seed_from_u64(exec::mix_seed(plan.seed, index));
    let eligible = gpx
        .tracks
        .iter()
        .flat_map(|t| &t.segments)
        .any(|s| s.points.len() >= MIN_CORRUPTIBLE_POINTS);
    if plan.kinds.is_empty()
        || plan.track_rate <= 0.0
        || !eligible
        || !rng.gen_bool(plan.track_rate)
    {
        return CorruptedTrack { payload: Payload::Parsed(gpx.clone()), injected: Vec::new() };
    }

    // Choose one or two distinct kinds from the enabled set.
    let mut chosen: Vec<FaultKind> = Vec::new();
    let first = plan.kinds[rng.gen_range(0..plan.kinds.len())];
    chosen.push(first);
    if plan.kinds.len() > 1 && rng.gen_bool(0.35) {
        loop {
            let second = plan.kinds[rng.gen_range(0..plan.kinds.len())];
            if second != first {
                chosen.push(second);
                break;
            }
        }
    }
    chosen.sort();

    let mut doc = gpx.clone();
    let mut applied: Vec<FaultKind> = Vec::new();

    // Time-sensitive faults need timestamps to be detectable; stamp the
    // whole document so ingestion sees a consistent recording.
    if chosen.iter().any(|k| {
        matches!(
            k,
            FaultKind::GpsGap | FaultKind::DuplicatePoints | FaultKind::OutOfOrderTime
        )
    }) {
        stamp_timestamps(&mut doc);
    }

    for &kind in &chosen {
        let did = match kind {
            FaultKind::GpsGap => inject_gap(&mut doc, &mut rng),
            FaultKind::ElevationSpike => inject_spikes(&mut doc, &mut rng),
            FaultKind::ElevationNan => inject_nans(&mut doc, &mut rng),
            FaultKind::DuplicatePoints => inject_duplicates(&mut doc, &mut rng),
            FaultKind::OutOfOrderTime => inject_shuffle(&mut doc, &mut rng),
            // Byte-level kinds run after serialization, below.
            FaultKind::TruncateBytes | FaultKind::MangleBytes => continue,
        };
        if did {
            applied.push(kind);
        }
    }

    let byte_kinds: Vec<FaultKind> = chosen
        .iter()
        .copied()
        .filter(|k| matches!(k, FaultKind::TruncateBytes | FaultKind::MangleBytes))
        .collect();
    if byte_kinds.is_empty() {
        return CorruptedTrack { payload: Payload::Parsed(doc), injected: applied };
    }
    let mut bytes = doc.to_xml().into_bytes();
    for kind in byte_kinds {
        match kind {
            FaultKind::TruncateBytes => {
                let keep = rng.gen_range(0.3..0.9);
                bytes.truncate(((bytes.len() as f64) * keep) as usize);
                applied.push(FaultKind::TruncateBytes);
            }
            FaultKind::MangleBytes => {
                let hits = rng.gen_range(4..=16usize);
                for _ in 0..hits {
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] = (rng.gen_range(0..=255u32)) as u8;
                }
                applied.push(FaultKind::MangleBytes);
            }
            _ => unreachable!("filtered to byte kinds"),
        }
    }
    applied.sort();
    CorruptedTrack { payload: Payload::Raw(bytes), injected: applied }
}

/// Synthesizes the ISO-8601 timestamp of point `i` (one point per
/// second from a fixed base instant — the value only needs to be
/// ordered and evenly spaced, not historically meaningful).
pub fn synth_timestamp(i: usize) -> String {
    let total = 8 * 3600 + i; // 08:00:00Z onward
    let (h, m, s) = (total / 3600 % 24, total / 60 % 60, total % 60);
    format!("2020-01-11T{h:02}:{m:02}:{s:02}Z")
}

fn stamp_timestamps(doc: &mut Gpx) {
    let mut i = 0usize;
    for track in &mut doc.tracks {
        for seg in &mut track.segments {
            for p in &mut seg.points {
                p.time = Some(synth_timestamp(i));
                i += 1;
            }
        }
    }
}

/// Runs `f` on every eligible segment's point vector; reports whether
/// any segment changed.
fn for_each_segment<F>(doc: &mut Gpx, mut f: F) -> bool
where
    F: FnMut(&mut Vec<TrackPoint>) -> bool,
{
    let mut did = false;
    for track in &mut doc.tracks {
        for seg in &mut track.segments {
            if seg.points.len() >= MIN_CORRUPTIBLE_POINTS {
                did |= f(&mut seg.points);
            }
        }
    }
    did
}

/// Drops a contiguous interior run of 5–20% of the segment's points.
fn inject_gap(doc: &mut Gpx, rng: &mut StdRng) -> bool {
    for_each_segment(doc, |points| {
        let n = points.len();
        let gap = ((n as f64) * rng.gen_range(0.05..0.20)).round().max(2.0) as usize;
        let start = rng.gen_range(n / 5..(4 * n / 5).saturating_sub(gap).max(n / 5 + 1));
        points.drain(start..(start + gap).min(n - 1));
        true
    })
}

/// Adds ±80–400 m to 1–4 isolated elevations.
fn inject_spikes(doc: &mut Gpx, rng: &mut StdRng) -> bool {
    for_each_segment(doc, |points| {
        let k = rng.gen_range(1..=4usize);
        let mut did = false;
        for _ in 0..k {
            let at = rng.gen_range(0..points.len());
            if let Some(e) = points[at].elevation_m.as_mut() {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                *e += sign * rng.gen_range(80.0..400.0);
                did = true;
            }
        }
        did
    })
}

/// Replaces 2–10% of elevations with NaN.
fn inject_nans(doc: &mut Gpx, rng: &mut StdRng) -> bool {
    for_each_segment(doc, |points| {
        let frac = rng.gen_range(0.02..0.10);
        let k = (((points.len() as f64) * frac).round() as usize).max(1);
        let mut did = false;
        for _ in 0..k {
            let at = rng.gen_range(0..points.len());
            if points[at].elevation_m.is_some() {
                points[at].elevation_m = Some(f64::NAN);
                did = true;
            }
        }
        did
    })
}

/// Re-inserts a copy of a short run right after itself (same
/// coordinates, elevations, and timestamps).
fn inject_duplicates(doc: &mut Gpx, rng: &mut StdRng) -> bool {
    for_each_segment(doc, |points| {
        let run = rng.gen_range(1..=6usize).min(points.len() / 2);
        let at = rng.gen_range(0..points.len() - run);
        let copies: Vec<TrackPoint> = points[at..at + run].to_vec();
        for (off, p) in copies.into_iter().enumerate() {
            points.insert(at + run + off, p);
        }
        true
    })
}

/// Reverses a 4–10 point window (points travel with their timestamps,
/// so sorting by time restores the original order exactly).
fn inject_shuffle(doc: &mut Gpx, rng: &mut StdRng) -> bool {
    for_each_segment(doc, |points| {
        let w = rng.gen_range(4..=10usize).min(points.len() - 1);
        let at = rng.gen_range(0..points.len() - w);
        points[at..at + w].reverse();
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoprim::LatLon;
    use gpxfile::{Track, TrackSegment};

    fn sample_gpx(n: usize) -> Gpx {
        let points = (0..n)
            .map(|i| {
                TrackPoint::with_elevation(
                    LatLon::new(38.0 + i as f64 * 1e-4, -77.0),
                    20.0 + (i as f64 * 0.37).sin() * 3.0,
                )
            })
            .collect();
        Gpx {
            creator: "faultsim test".into(),
            tracks: vec![Track { name: None, segments: vec![TrackSegment { points }] }],
        }
    }

    #[test]
    fn none_plan_is_identity() {
        let gpx = sample_gpx(120);
        for i in 0..20 {
            let out = corrupt_track(&FaultPlan::none(), i, &gpx);
            assert!(out.injected.is_empty());
            assert_eq!(out.payload, Payload::Parsed(gpx.clone()));
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        // NaN faults defeat PartialEq (NaN != NaN), so compare the
        // serialized bytes, which is also the stronger property.
        let as_bytes = |t: CorruptedTrack| match t.payload {
            Payload::Parsed(g) => (g.to_xml().into_bytes(), t.injected),
            Payload::Raw(b) => (b, t.injected),
        };
        let gpx = sample_gpx(150);
        let plan = FaultPlan::uniform(1.0, 7);
        for i in 0..30 {
            assert_eq!(
                as_bytes(corrupt_track(&plan, i, &gpx)),
                as_bytes(corrupt_track(&plan, i, &gpx))
            );
        }
    }

    #[test]
    fn rate_one_always_injects() {
        let gpx = sample_gpx(150);
        let plan = FaultPlan::uniform(1.0, 3);
        for i in 0..50 {
            let out = corrupt_track(&plan, i, &gpx);
            assert!(!out.injected.is_empty(), "track {i} escaped a rate-1.0 plan");
        }
    }

    #[test]
    fn rate_matches_fraction_of_tracks() {
        let gpx = sample_gpx(100);
        let plan = FaultPlan::uniform(0.2, 11);
        let hit = (0..500)
            .filter(|&i| !corrupt_track(&plan, i, &gpx).injected.is_empty())
            .count();
        assert!((60..=140).contains(&hit), "hit {hit}/500 at rate 0.2");
    }

    #[test]
    fn single_kind_plans_apply_that_kind() {
        let gpx = sample_gpx(120);
        for kind in FaultKind::ALL {
            let plan = FaultPlan {
                kinds: vec![kind],
                ..FaultPlan::uniform(1.0, 13)
            };
            let out = corrupt_track(&plan, 1, &gpx);
            assert_eq!(out.injected, vec![kind]);
            match kind {
                FaultKind::TruncateBytes | FaultKind::MangleBytes => {
                    assert!(matches!(out.payload, Payload::Raw(_)));
                }
                _ => assert!(matches!(out.payload, Payload::Parsed(_))),
            }
        }
    }

    #[test]
    fn gap_shortens_and_nan_poisons() {
        let gpx = sample_gpx(200);
        let gap_plan =
            FaultPlan { kinds: vec![FaultKind::GpsGap], ..FaultPlan::uniform(1.0, 17) };
        let Payload::Parsed(g) = corrupt_track(&gap_plan, 0, &gpx).payload else {
            panic!("gap stays parsed")
        };
        assert!(g.point_count() < 200);

        let nan_plan =
            FaultPlan { kinds: vec![FaultKind::ElevationNan], ..FaultPlan::uniform(1.0, 17) };
        let Payload::Parsed(g) = corrupt_track(&nan_plan, 0, &gpx).payload else {
            panic!("nan stays parsed")
        };
        assert!(g.elevation_profile().iter().any(|e| e.is_nan()));
    }

    #[test]
    fn shuffle_is_restored_by_time_sort() {
        let gpx = sample_gpx(100);
        let plan =
            FaultPlan { kinds: vec![FaultKind::OutOfOrderTime], ..FaultPlan::uniform(1.0, 23) };
        let Payload::Parsed(g) = corrupt_track(&plan, 0, &gpx).payload else {
            panic!("shuffle stays parsed")
        };
        let mut points = g.tracks[0].segments[0].points.clone();
        let shuffled = points.clone();
        points.sort_by(|a, b| a.time.cmp(&b.time));
        assert_ne!(points, shuffled, "injection must actually shuffle");
        let elevations: Vec<f64> = points.iter().filter_map(|p| p.elevation_m).collect();
        assert_eq!(elevations, gpx.elevation_profile());
    }

    #[test]
    fn short_tracks_pass_through() {
        let gpx = sample_gpx(4);
        let out = corrupt_track(&FaultPlan::uniform(1.0, 5), 0, &gpx);
        assert!(out.injected.is_empty());
    }

    #[test]
    fn timestamps_are_ordered_and_distinct() {
        let a = synth_timestamp(0);
        let b = synth_timestamp(1);
        let z = synth_timestamp(3600);
        assert!(a < b && b < z);
        assert_eq!(a, "2020-01-11T08:00:00Z");
    }
}
