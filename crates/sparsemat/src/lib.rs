//! Sparse feature vectors and CSR matrices for the attack pipeline.
//!
//! The paper's bag-of-words rows are occurrence-probability vectors over
//! an n-gram vocabulary; at realistic vocabulary sizes (thousands of
//! features, `FeatureSelection::standard` caps at 4096) a single profile
//! matches a few dozen grams, so dense `Vec<f32>` rows are >95% zeros.
//! This crate stores only the nonzeros — sorted `(index, value)` pairs —
//! and provides the kernels the classifiers need:
//!
//! - [`SparseVec::dot_dense`] — the Pegasos SVM inner product,
//! - [`SparseVec::sq_euclidean`] / [`SparseVec::manhattan`] — merged
//!   two-pointer k-NN distances,
//! - [`CsrMatrix::matmul_dense`] — the MLP's sparse×dense input matmul,
//! - [`FeatureMatrix`] — dense/sparse dispatch so column-split learners
//!   (the random forest) keep a dense view.
//!
//! Every kernel accumulates in ascending index order, skipping only
//! exact-zero terms, so results are bit-identical to the dense
//! computation they replace (`x + 0.0 == x` for every finite `x` that
//! is not `-0.0`, and the pipeline's feature values are non-negative).
//!
//! # Examples
//!
//! ```
//! use sparsemat::SparseVec;
//!
//! let dense = vec![0.0, 0.5, 0.0, 0.0, 0.25, 0.25];
//! let sparse = SparseVec::from_dense(&dense);
//! assert_eq!(sparse.nnz(), 3);
//! assert_eq!(sparse.to_dense(), dense);
//! let w = vec![1.0f32; 6];
//! assert_eq!(sparse.dot_dense(&w), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use tensorlite::Tensor;

/// Merge-join dot product of two sparse vectors given as parallel
/// sorted index/value slices — the cosine-matching kernel the scale
/// sweeps and the IVF index share. Accumulates in ascending index
/// order, so the result is a pure function of the two operands
/// (bit-identical at any call site).
pub fn dot_sorted(a_idx: &[u32], a_val: &[f32], b_idx: &[u32], b_val: &[f32]) -> f32 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0f32);
    while i < a_idx.len() && j < b_idx.len() {
        match a_idx[i].cmp(&b_idx[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a_val[i] * b_val[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// A sparse `f32` vector: sorted indices plus their nonzero values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVec {
    /// Builds a sparse vector from parallel index/value arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays' lengths differ, indices are not strictly
    /// increasing, or any index is out of bounds for `dim`.
    pub fn new(dim: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len(), "one value per index");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        if let Some(&last) = indices.last() {
            assert!((last as usize) < dim, "index {last} out of bounds for dim {dim}");
        }
        Self { dim, indices, values }
    }

    /// An all-zero vector of the given width.
    pub fn zeros(dim: usize) -> Self {
        Self { dim, indices: Vec::new(), values: Vec::new() }
    }

    /// Compresses a dense slice, dropping exact zeros.
    pub fn from_dense(row: &[f32]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in row.iter().enumerate() {
            if v != 0.0 {
                indices.push(i as u32);
                values.push(v);
            }
        }
        Self { dim: row.len(), indices, values }
    }

    /// Scatters back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Logical width of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The sorted nonzero indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The values parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.indices.iter().zip(&self.values).map(|(&i, &v)| (i as usize, v))
    }

    /// Inner product with a dense weight vector, accumulated in index
    /// order — bit-identical to the dense dot over the scattered row.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.dim()`.
    pub fn dot_dense(&self, w: &[f32]) -> f32 {
        assert_eq!(w.len(), self.dim, "weight width mismatch");
        let mut acc = 0.0f32;
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            acc += w[i as usize] * v;
        }
        acc
    }

    /// `out[i] += scale * self[i]` over the nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn axpy_into(&self, scale: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output width mismatch");
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] += scale * v;
        }
    }

    /// Squared Euclidean distance to another sparse vector, via a
    /// two-pointer merge over the index union.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sq_euclidean(&self, other: &SparseVec) -> f32 {
        self.merged_distance(other, |d| d * d)
    }

    /// Manhattan (L1) distance to another sparse vector.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn manhattan(&self, other: &SparseVec) -> f32 {
        self.merged_distance(other, f32::abs)
    }

    /// Accumulates `term(a_j - b_j)` over the union of nonzero indices,
    /// in ascending index order (matching the dense loop, whose
    /// both-zero terms contribute exactly `term(0.0) == 0.0`).
    fn merged_distance(&self, other: &SparseVec, term: impl Fn(f32) -> f32) -> f32 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        merged_term(&self.indices, &self.values, &other.indices, &other.values, term)
    }
}

/// Two-pointer merge over the index union of two sorted sparse rows,
/// accumulating `term(a_j - b_j)` in ascending index order. One-sided
/// entries contribute `term(a_j - 0.0)` / `term(0.0 - b_j)`, computed as
/// `term(a_j)` / `term(-b_j)` — the identical `f32` operations, since
/// `x - 0.0 == x` and `0.0 - x == -x` bitwise for nonzero `x`.
fn merged_term(
    ai: &[u32],
    av: &[f32],
    bi: &[u32],
    bv: &[f32],
    term: impl Fn(f32) -> f32,
) -> f32 {
    let (mut p, mut q) = (0usize, 0usize);
    let mut acc = 0.0f32;
    while p < ai.len() && q < bi.len() {
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => {
                acc += term(av[p]);
                p += 1;
            }
            std::cmp::Ordering::Greater => {
                acc += term(-bv[q]);
                q += 1;
            }
            std::cmp::Ordering::Equal => {
                acc += term(av[p] - bv[q]);
                p += 1;
                q += 1;
            }
        }
    }
    for &v in &av[p..] {
        acc += term(v);
    }
    for &v in &bv[q..] {
        acc += term(-v);
    }
    acc
}

/// A compressed-sparse-row matrix of feature rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_cols: usize,
    /// Row `i` occupies `indices[indptr[i]..indptr[i+1]]`.
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Concatenates sparse rows into CSR form.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows disagree on width.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a SparseVec>,
    {
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut n_cols = None;
        for row in rows {
            match n_cols {
                None => n_cols = Some(row.dim()),
                Some(d) => assert_eq!(d, row.dim(), "ragged sparse rows"),
            }
            indices.extend_from_slice(row.indices());
            values.extend_from_slice(row.values());
            indptr.push(indices.len());
        }
        let n_cols = n_cols.expect("cannot build a CSR matrix from zero rows");
        Self { n_cols, indptr, indices, values }
    }

    /// Compresses dense rows (dropping exact zeros).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_dense_rows(rows: &[Vec<f32>]) -> Self {
        let sparse: Vec<SparseVec> = rows.iter().map(|r| SparseVec::from_dense(r)).collect();
        Self::from_rows(&sparse)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of (logical) columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of logically present entries that are stored.
    pub fn density(&self) -> f64 {
        let total = self.n_rows() * self.n_cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Bytes held by the sparse representation.
    pub fn sparse_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }

    /// Bytes an equivalent dense `Vec<f32>` matrix would hold.
    pub fn dense_bytes(&self) -> usize {
        self.n_rows() * self.n_cols * std::mem::size_of::<f32>()
    }

    /// The `(indices, values)` slices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Copies row `i` out as a [`SparseVec`].
    pub fn row_vec(&self, i: usize) -> SparseVec {
        let (idx, val) = self.row(i);
        SparseVec { dim: self.n_cols, indices: idx.to_vec(), values: val.to_vec() }
    }

    /// Row `i`'s inner product with a dense weight vector.
    pub fn row_dot_dense(&self, i: usize, w: &[f32]) -> f32 {
        assert_eq!(w.len(), self.n_cols, "weight width mismatch");
        let (idx, val) = self.row(i);
        let mut acc = 0.0f32;
        for (&j, &v) in idx.iter().zip(val) {
            acc += w[j as usize] * v;
        }
        acc
    }

    /// `out[j] += scale * row_i[j]` over row `i`'s nonzeros.
    pub fn row_axpy_into(&self, i: usize, scale: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.n_cols, "output width mismatch");
        let (idx, val) = self.row(i);
        for (&j, &v) in idx.iter().zip(val) {
            out[j as usize] += scale * v;
        }
    }

    /// Squared Euclidean distance between row `i` and a sparse probe,
    /// without materializing either side densely.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn row_sq_euclidean(&self, i: usize, probe: &SparseVec) -> f32 {
        assert_eq!(probe.dim(), self.n_cols, "dimension mismatch");
        let (idx, val) = self.row(i);
        merged_term(idx, val, probe.indices(), probe.values(), |d| d * d)
    }

    /// Manhattan (L1) distance between row `i` and a sparse probe.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn row_manhattan(&self, i: usize, probe: &SparseVec) -> f32 {
        assert_eq!(probe.dim(), self.n_cols, "dimension mismatch");
        let (idx, val) = self.row(i);
        merged_term(idx, val, probe.indices(), probe.values(), f32::abs)
    }

    /// Gathers the listed rows into a new CSR matrix (cheap row copies;
    /// used for mini-batching and fold splits).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any index is out of range.
    pub fn gather(&self, rows: &[usize]) -> CsrMatrix {
        assert!(!rows.is_empty(), "cannot gather zero rows");
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &r in rows {
            let (idx, val) = self.row(r);
            indices.extend_from_slice(idx);
            values.extend_from_slice(val);
            indptr.push(indices.len());
        }
        CsrMatrix { n_cols: self.n_cols, indptr, indices, values }
    }

    /// Expands to dense rows.
    pub fn to_dense_rows(&self) -> Vec<Vec<f32>> {
        (0..self.n_rows())
            .map(|i| {
                let mut row = vec![0.0f32; self.n_cols];
                let (idx, val) = self.row(i);
                for (&j, &v) in idx.iter().zip(val) {
                    row[j as usize] = v;
                }
                row
            })
            .collect()
    }

    /// Sparse×dense matrix product: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Each output element accumulates over this row's nonzeros in
    /// ascending column order — the dense accumulation order with
    /// zero terms skipped — so the product is bit-identical to
    /// densifying and calling [`Tensor::matmul`] (up to the sign of
    /// zero, which no downstream consumer observes).
    ///
    /// # Panics
    ///
    /// Panics unless `rhs` is 2-D with `rhs.shape()[0] == self.n_cols()`.
    pub fn matmul_dense(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(rhs.shape().len(), 2, "matmul rhs must be 2-D");
        let (k, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, self.n_cols, "inner dimensions {} vs {k}", self.n_cols);
        let m = self.n_rows();
        let mut out = vec![0.0f32; m * n];
        let b = rhs.data();
        for i in 0..m {
            let (idx, val) = self.row(i);
            let dst = &mut out[i * n..(i + 1) * n];
            for (&p, &a) in idx.iter().zip(val) {
                let src = &b[p as usize * n..(p as usize + 1) * n];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

/// Feature rows in either storage layout.
///
/// The text-side classifiers consume whichever layout fits their access
/// pattern: the SVM / naive-Bayes / k-NN models walk nonzeros
/// ([`FeatureMatrix::Sparse`]), while the random forest's column splits
/// need O(1) element access and densify once per fit
/// ([`FeatureMatrix::to_dense_rows`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureMatrix {
    /// Dense rows (row-major `Vec` per sample).
    Dense(Vec<Vec<f32>>),
    /// CSR nonzeros only.
    Sparse(CsrMatrix),
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        match self {
            FeatureMatrix::Dense(rows) => rows.len(),
            FeatureMatrix::Sparse(m) => m.n_rows(),
        }
    }

    /// Number of columns.
    ///
    /// # Panics
    ///
    /// Panics on an empty dense matrix.
    pub fn n_cols(&self) -> usize {
        match self {
            FeatureMatrix::Dense(rows) => rows[0].len(),
            FeatureMatrix::Sparse(m) => m.n_cols(),
        }
    }

    /// A dense row-major view; borrows when already dense.
    pub fn to_dense_rows(&self) -> std::borrow::Cow<'_, [Vec<f32>]> {
        match self {
            FeatureMatrix::Dense(rows) => std::borrow::Cow::Borrowed(rows),
            FeatureMatrix::Sparse(m) => std::borrow::Cow::Owned(m.to_dense_rows()),
        }
    }

    /// A CSR view; compresses when dense.
    pub fn to_csr(&self) -> std::borrow::Cow<'_, CsrMatrix> {
        match self {
            FeatureMatrix::Dense(rows) => {
                std::borrow::Cow::Owned(CsrMatrix::from_dense_rows(rows))
            }
            FeatureMatrix::Sparse(m) => std::borrow::Cow::Borrowed(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fixture() -> Vec<Vec<f32>> {
        vec![
            vec![0.0, 1.5, 0.0, -2.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![3.0, 0.0, 0.25, 0.0, 1.0],
        ]
    }

    #[test]
    fn dense_roundtrip() {
        for row in dense_fixture() {
            assert_eq!(SparseVec::from_dense(&row).to_dense(), row);
        }
    }

    #[test]
    fn dot_matches_dense() {
        let w: Vec<f32> = (0..5).map(|i| i as f32 * 0.5 - 1.0).collect();
        for row in dense_fixture() {
            let dense: f32 = row.iter().zip(&w).map(|(a, b)| a * b).sum();
            let sparse = SparseVec::from_dense(&row).dot_dense(&w);
            assert_eq!(sparse.to_bits(), dense.to_bits());
        }
    }

    #[test]
    fn merged_distances_match_dense() {
        let rows = dense_fixture();
        let sparse: Vec<SparseVec> = rows.iter().map(|r| SparseVec::from_dense(r)).collect();
        for a in 0..rows.len() {
            for b in 0..rows.len() {
                let dense_sq: f32 =
                    rows[a].iter().zip(&rows[b]).map(|(x, y)| (x - y) * (x - y)).sum();
                let dense_l1: f32 =
                    rows[a].iter().zip(&rows[b]).map(|(x, y)| (x - y).abs()).sum();
                assert_eq!(sparse[a].sq_euclidean(&sparse[b]).to_bits(), dense_sq.to_bits());
                assert_eq!(sparse[a].manhattan(&sparse[b]).to_bits(), dense_l1.to_bits());
            }
        }
    }

    #[test]
    fn csr_row_access_and_gather() {
        let m = CsrMatrix::from_dense_rows(&dense_fixture());
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 5);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(1).0.len(), 0);
        let g = m.gather(&[2, 0, 2]);
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.to_dense_rows()[0], dense_fixture()[2]);
        assert_eq!(g.to_dense_rows()[1], dense_fixture()[0]);
    }

    #[test]
    fn csr_matmul_matches_dense_matmul() {
        let rows = dense_fixture();
        let csr = CsrMatrix::from_dense_rows(&rows);
        let rhs = Tensor::from_vec(
            (0..5 * 4).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.25).collect(),
            &[5, 4],
        );
        let dense = Tensor::from_rows(&rows).matmul(&rhs);
        let sparse = csr.matmul_dense(&rhs);
        assert_eq!(sparse.shape(), dense.shape());
        for (a, b) in sparse.data().iter().zip(dense.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "sparse {a} vs dense {b}");
        }
    }

    #[test]
    fn feature_matrix_views_agree() {
        let rows = dense_fixture();
        let sparse = FeatureMatrix::Sparse(CsrMatrix::from_dense_rows(&rows));
        let dense = FeatureMatrix::Dense(rows.clone());
        assert_eq!(sparse.n_rows(), dense.n_rows());
        assert_eq!(sparse.n_cols(), dense.n_cols());
        assert_eq!(sparse.to_dense_rows().as_ref(), rows.as_slice());
        assert_eq!(dense.to_csr().as_ref(), sparse.to_csr().as_ref());
    }

    #[test]
    fn memory_accounting_reports_savings() {
        let wide: Vec<Vec<f32>> = (0..8)
            .map(|i| {
                let mut r = vec![0.0f32; 1024];
                r[i * 7] = 1.0;
                r
            })
            .collect();
        let m = CsrMatrix::from_dense_rows(&wide);
        assert!(m.sparse_bytes() < m.dense_bytes() / 10);
        assert!(m.density() < 0.01);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_indices() {
        SparseVec::new(4, vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_index() {
        SparseVec::new(2, vec![2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn csr_rejects_ragged_rows() {
        let a = SparseVec::zeros(3);
        let b = SparseVec::zeros(4);
        CsrMatrix::from_rows([&a, &b]);
    }
}
