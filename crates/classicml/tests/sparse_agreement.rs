//! Bit-for-bit agreement between the sparse and dense classifier paths.
//!
//! The sparse kernels claim to be drop-in replacements: identical
//! accumulation order with only exact-zero terms skipped. These tests
//! pin that claim on sparse BoW-like data (non-negative, L1-normalized
//! rows with ~90% zeros), comparing fitted parameters with `==` and
//! predictions exactly.

use classicml::{
    KnnClassifier, KnnMetric, NaiveBayes, RandomForest, SvmClassifier, SvmConfig,
};
use sparsemat::{CsrMatrix, FeatureMatrix, SparseVec};

/// Deterministic sparse "BoW" rows: `n` rows over `dim` features, a few
/// nonzeros each, L1-normalized, labels by latent cluster.
fn bow_like(n: usize, dim: usize, classes: u32) -> (Vec<Vec<f32>>, Vec<u32>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for i in 0..n {
        let class = (i as u32) % classes;
        let mut row = vec![0.0f32; dim];
        // Class-specific band of features plus a couple of shared ones.
        let base = (class as usize * dim / classes as usize) % dim;
        let nnz = 3 + (next() as usize % 5);
        for _ in 0..nnz {
            let j = (base + next() as usize % (dim / 2)) % dim;
            row[j] += 1.0 + (next() % 4) as f32;
        }
        let total: f32 = row.iter().sum();
        for v in &mut row {
            *v /= total;
        }
        x.push(row);
        y.push(class);
    }
    (x, y)
}

#[test]
fn svm_sparse_fit_matches_dense_exactly() {
    let (x, y) = bow_like(60, 40, 3);
    let csr = CsrMatrix::from_dense_rows(&x);
    let cfg = SvmConfig { epochs: 12, ..Default::default() };
    let dense = SvmClassifier::fit(&x, &y, &cfg, 42);
    let sparse = SvmClassifier::fit_sparse(&csr, &y, &cfg, 42);
    // Same RNG stream, same updates: the hyperplanes compare equal.
    assert_eq!(dense, sparse);
    assert_eq!(dense.predict(&x), sparse.predict_sparse(&csr));
    for row in &x {
        let sv = SparseVec::from_dense(row);
        assert_eq!(dense.predict_one(row), sparse.predict_one_sparse(&sv));
        let dd = dense.decision_function(row);
        let sd = sparse.decision_function_sparse(&sv);
        assert_eq!(dd, sd);
    }
}

#[test]
fn naive_bayes_sparse_fit_is_bit_identical() {
    let (x, y) = bow_like(50, 32, 4);
    let csr = CsrMatrix::from_dense_rows(&x);
    let dense = NaiveBayes::fit(&x, &y, 1.0);
    let sparse = NaiveBayes::fit_sparse(&csr, &y, 1.0);
    assert_eq!(dense, sparse);
    assert_eq!(dense.predict(&x), sparse.predict_sparse(&csr));
    for row in &x {
        let sv = SparseVec::from_dense(row);
        let ds = dense.log_scores(row);
        let ss = sparse.log_scores_sparse(&sv);
        for (a, b) in ds.iter().zip(&ss) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn knn_sparse_distances_are_bit_identical() {
    let (x, y) = bow_like(40, 24, 2);
    let csr = CsrMatrix::from_dense_rows(&x);
    for metric in [KnnMetric::Euclidean, KnnMetric::Manhattan] {
        let dense = KnnClassifier::fit(&x, &y, 3, metric);
        let sparse = KnnClassifier::fit_sparse(&csr, &y, 3, metric);
        assert_eq!(dense.predict(&x), sparse.predict_sparse(&csr));
    }
    // The underlying sparse distances match the dense formula bitwise.
    for a in x.iter().take(10) {
        for b in x.iter().take(10) {
            let (sa, sb) = (SparseVec::from_dense(a), SparseVec::from_dense(b));
            let dense_sq: f32 =
                a.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum();
            assert_eq!(dense_sq.to_bits(), sa.sq_euclidean(&sb).to_bits());
            let dense_l1: f32 = a.iter().zip(b).map(|(u, v)| (u - v).abs()).sum();
            assert_eq!(dense_l1.to_bits(), sa.manhattan(&sb).to_bits());
        }
    }
}

#[test]
fn forest_fit_matrix_densifies_to_the_same_model() {
    let (x, y) = bow_like(30, 16, 2);
    let cfg = classicml::ForestConfig { n_trees: 10, ..Default::default() };
    let dense = RandomForest::fit(&x, &y, &cfg, 5);
    let via_dense_matrix = RandomForest::fit_matrix(&FeatureMatrix::Dense(x.clone()), &y, &cfg, 5);
    let via_sparse_matrix = RandomForest::fit_matrix(
        &FeatureMatrix::Sparse(CsrMatrix::from_dense_rows(&x)),
        &y,
        &cfg,
        5,
    );
    assert_eq!(dense, via_dense_matrix);
    assert_eq!(dense, via_sparse_matrix);
}
