//! Property-based tests for the classic learners.

use classicml::{DecisionTree, ForestConfig, RandomForest, SvmClassifier, SvmConfig, TreeConfig};
use proptest::prelude::*;

/// Linearly separable 2-D blobs with adjustable separation.
fn blobs(n_per: usize, sep: f32) -> (Vec<Vec<f32>>, Vec<u32>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..n_per {
        let j = (i as f32 * 0.7).sin() * 0.3;
        x.push(vec![sep + j, j]);
        y.push(0);
        x.push(vec![-sep - j, -j]);
        y.push(1);
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn svm_separates_well_separated_blobs(seed in 0u64..500, n in 8usize..30) {
        let (x, y) = blobs(n, 3.0);
        let svm = SvmClassifier::fit(&x, &y, &SvmConfig::default(), seed);
        let acc = svm.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count();
        prop_assert!(acc * 10 >= x.len() * 9, "{acc}/{}", x.len());
    }

    #[test]
    fn svm_decision_scores_are_finite(seed in 0u64..500) {
        let (x, y) = blobs(10, 1.0);
        let svm = SvmClassifier::fit(&x, &y, &SvmConfig::default(), seed);
        for row in &x {
            for s in svm.decision_function(row) {
                prop_assert!(s.is_finite());
            }
        }
    }

    #[test]
    fn tree_fits_training_data_perfectly_when_unbounded(
        labels in prop::collection::vec(0u32..3, 6..40),
    ) {
        // Distinct 1-D inputs: an unbounded tree must memorize exactly.
        let x: Vec<Vec<f32>> = (0..labels.len()).map(|i| vec![i as f32]).collect();
        let cfg = TreeConfig { max_depth: 64, ..Default::default() };
        let tree = DecisionTree::fit(&x, &labels, &cfg, 1);
        prop_assert_eq!(tree.predict(&x), labels);
    }

    #[test]
    fn tree_depth_respects_bound(
        labels in prop::collection::vec(0u32..4, 8..60),
        depth in 1usize..6,
    ) {
        let x: Vec<Vec<f32>> = (0..labels.len()).map(|i| vec![i as f32, (i * i) as f32]).collect();
        let cfg = TreeConfig { max_depth: depth, ..Default::default() };
        let tree = DecisionTree::fit(&x, &labels, &cfg, 1);
        prop_assert!(tree.depth() <= depth);
    }

    #[test]
    fn forest_votes_are_conserved(seed in 0u64..200) {
        let (x, y) = blobs(10, 2.0);
        let cfg = ForestConfig { n_trees: 9, ..Default::default() };
        let forest = RandomForest::fit(&x, &y, &cfg, seed);
        for row in &x {
            prop_assert_eq!(forest.votes(row).iter().sum::<usize>(), 9);
        }
    }

    #[test]
    fn forest_prediction_matches_top_vote(seed in 0u64..200) {
        let (x, y) = blobs(8, 1.5);
        let forest =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 7, ..Default::default() }, seed);
        for row in &x {
            let votes = forest.votes(row);
            let pred = forest.predict_one(row) as usize;
            prop_assert_eq!(votes[pred], *votes.iter().max().unwrap());
        }
    }

    #[test]
    fn learners_are_seed_deterministic(seed in 0u64..200) {
        let (x, y) = blobs(8, 1.0);
        let a = SvmClassifier::fit(&x, &y, &SvmConfig::default(), seed);
        let b = SvmClassifier::fit(&x, &y, &SvmConfig::default(), seed);
        prop_assert_eq!(a, b);
        let fa = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() }, seed);
        let fb = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() }, seed);
        prop_assert_eq!(fa, fb);
    }
}
