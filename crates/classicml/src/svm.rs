//! Linear one-vs-rest SVM trained with Pegasos.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sparsemat::{CsrMatrix, SparseVec};

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// L2 regularization strength λ of the Pegasos objective.
    pub lambda: f32,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-4, epochs: 30 }
    }
}

/// One binary hyperplane (weights + bias).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Hyperplane {
    w: Vec<f32>,
    b: f32,
}

impl Hyperplane {
    fn score(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.w.len());
        self.w.iter().zip(x).map(|(w, v)| w * v).sum::<f32>() + self.b
    }
}

/// A linear multi-class SVM (one-vs-rest).
///
/// Each class gets a Pegasos-trained hyperplane separating it from the
/// rest; prediction takes the class with the highest margin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmClassifier {
    planes: Vec<Hyperplane>,
    dim: usize,
}

impl SvmClassifier {
    /// Trains on dense rows `x` with labels `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or ragged, `x`/`y` lengths differ, or
    /// fewer than two classes are present.
    pub fn fit(x: &[Vec<f32>], y: &[u32], config: &SvmConfig, seed: u64) -> Self {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "one label per row");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        let n_classes = y.iter().copied().max().expect("non-empty") as usize + 1;
        assert!(n_classes >= 2, "need at least two classes");

        let planes = (0..n_classes)
            .map(|class| {
                train_binary(x, y, class as u32, config, seed.wrapping_add(class as u64))
            })
            .collect();
        Self { planes, dim }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.planes.len()
    }

    /// Per-class margins for one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training data.
    pub fn decision_function(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.dim, "feature width mismatch");
        self.planes.iter().map(|p| p.score(row)).collect()
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f32]) -> u32 {
        let scores = self.decision_function(row);
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Predicted classes for many rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Vec<u32> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Trains on CSR rows without ever densifying them.
    ///
    /// The Pegasos recurrence is identical to [`SvmClassifier::fit`] —
    /// same RNG stream, same shrink and projection steps — except that
    /// the margin dot and the violation update walk only the row's
    /// nonzeros. A skipped term is `w_j · 0.0` (resp. `w_j += η·y·0.0`),
    /// which never changes a finite accumulator except possibly the sign
    /// of an exact zero, so the learned hyperplanes compare equal
    /// (`==`) to the dense fit's and every margin comparison, and hence
    /// every prediction, is identical.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, `x`/`y` lengths differ, or fewer than two
    /// classes are present.
    pub fn fit_sparse(x: &CsrMatrix, y: &[u32], config: &SvmConfig, seed: u64) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty dataset");
        assert_eq!(x.n_rows(), y.len(), "one label per row");
        let n_classes = y.iter().copied().max().expect("non-empty") as usize + 1;
        assert!(n_classes >= 2, "need at least two classes");

        let planes = (0..n_classes)
            .map(|class| {
                train_binary_sparse(x, y, class as u32, config, seed.wrapping_add(class as u64))
            })
            .collect();
        Self { planes, dim: x.n_cols() }
    }

    /// Per-class margins for one sparse row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training data.
    pub fn decision_function_sparse(&self, row: &SparseVec) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.planes.len());
        self.decision_function_sparse_into(row, &mut out);
        out
    }

    /// [`decision_function_sparse`](Self::decision_function_sparse)
    /// into a caller-owned buffer (cleared first) — the serving hot
    /// path's allocation-free variant: once `out` has warmed to
    /// `n_classes` capacity, no heap allocation occurs.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training data.
    pub fn decision_function_sparse_into(&self, row: &SparseVec, out: &mut Vec<f32>) {
        assert_eq!(row.dim(), self.dim, "feature width mismatch");
        out.clear();
        out.extend(self.planes.iter().map(|p| row.dot_dense(&p.w) + p.b));
    }

    /// Predicted class for one sparse row.
    pub fn predict_one_sparse(&self, row: &SparseVec) -> u32 {
        let scores = self.decision_function_sparse(row);
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Predicted classes for every row of a CSR matrix.
    pub fn predict_sparse(&self, rows: &CsrMatrix) -> Vec<u32> {
        assert_eq!(rows.n_cols(), self.dim, "feature width mismatch");
        (0..rows.n_rows())
            .map(|i| {
                let mut best = 0usize;
                let mut best_score = f32::NEG_INFINITY;
                for (c, p) in self.planes.iter().enumerate() {
                    let s = rows.row_dot_dense(i, &p.w) + p.b;
                    if s > best_score {
                        best_score = s;
                        best = c;
                    }
                }
                best as u32
            })
            .collect()
    }
}

/// Pegasos: stochastic sub-gradient descent on
/// `λ/2‖w‖² + mean(hinge)` with step `1/(λt)`.
fn train_binary(
    x: &[Vec<f32>],
    y: &[u32],
    positive: u32,
    config: &SvmConfig,
    seed: u64,
) -> Hyperplane {
    let dim = x[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = vec![0.0f32; dim];
    let mut b = 0.0f32;
    let mut t = 0u64;
    let n = x.len();
    for _ in 0..config.epochs {
        for _ in 0..n {
            t += 1;
            let i = rng.gen_range(0..n);
            let label = if y[i] == positive { 1.0f32 } else { -1.0 };
            let eta = 1.0 / (config.lambda * t as f32);
            let margin = label * (dot(&w, &x[i]) + b);
            // w ← (1 − ηλ)w (+ ηy x if margin violated)
            let shrink = 1.0 - eta * config.lambda;
            for wj in &mut w {
                *wj *= shrink;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(&x[i]) {
                    *wj += eta * label * xj;
                }
                b += eta * label;
            }
            // Pegasos projection step: keep ‖w‖ ≤ 1/√λ, which bounds the
            // early-iteration oscillation of the 1/(λt) step size.
            let norm2: f32 = w.iter().map(|v| v * v).sum();
            let radius2 = 1.0 / config.lambda;
            if norm2 > radius2 {
                let scale = (radius2 / norm2).sqrt();
                for wj in &mut w {
                    *wj *= scale;
                }
            }
        }
    }
    Hyperplane { w, b }
}

/// Pegasos over CSR rows: the dot and the violation update touch only
/// nonzeros; the shrink and projection steps still sweep the dense
/// weight vector (they scale every coordinate, sparse input or not).
fn train_binary_sparse(
    x: &CsrMatrix,
    y: &[u32],
    positive: u32,
    config: &SvmConfig,
    seed: u64,
) -> Hyperplane {
    let dim = x.n_cols();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = vec![0.0f32; dim];
    let mut b = 0.0f32;
    let mut t = 0u64;
    let n = x.n_rows();
    for _ in 0..config.epochs {
        for _ in 0..n {
            t += 1;
            let i = rng.gen_range(0..n);
            let label = if y[i] == positive { 1.0f32 } else { -1.0 };
            let eta = 1.0 / (config.lambda * t as f32);
            let margin = label * (x.row_dot_dense(i, &w) + b);
            let shrink = 1.0 - eta * config.lambda;
            for wj in &mut w {
                *wj *= shrink;
            }
            if margin < 1.0 {
                x.row_axpy_into(i, eta * label, &mut w);
                b += eta * label;
            }
            let norm2: f32 = w.iter().map(|v| v * v).sum();
            let radius2 = 1.0 / config.lambda;
            if norm2 > radius2 {
                let scale = (radius2 / norm2).sqrt();
                for wj in &mut w {
                    *wj *= scale;
                }
            }
        }
    }
    Hyperplane { w, b }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let j = (i as f32 * 0.7).sin() * 0.2;
            x.push(vec![1.0 + j, 0.0 + j]);
            y.push(0);
            x.push(vec![-1.0 - j, 0.5 - j]);
            y.push(1);
            x.push(vec![0.0 + j, -1.5 + j]);
            y.push(2);
        }
        (x, y)
    }

    #[test]
    fn separates_three_blobs() {
        let (x, y) = blobs(20);
        let svm = SvmClassifier::fit(&x, &y, &SvmConfig::default(), 1);
        let pred = svm.predict(&x);
        let correct = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct >= 58, "correct {correct}/60");
    }

    #[test]
    fn decision_function_has_one_score_per_class() {
        let (x, y) = blobs(5);
        let svm = SvmClassifier::fit(&x, &y, &SvmConfig::default(), 1);
        assert_eq!(svm.n_classes(), 3);
        assert_eq!(svm.decision_function(&x[0]).len(), 3);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(10);
        let a = SvmClassifier::fit(&x, &y, &SvmConfig::default(), 9);
        let b = SvmClassifier::fit(&x, &y, &SvmConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn margin_violations_shrink_with_training() {
        let (x, y) = blobs(15);
        let short = SvmClassifier::fit(&x, &y, &SvmConfig { epochs: 1, ..Default::default() }, 3);
        let long = SvmClassifier::fit(&x, &y, &SvmConfig { epochs: 40, ..Default::default() }, 3);
        let acc = |svm: &SvmClassifier| {
            svm.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count()
        };
        assert!(acc(&long) >= acc(&short));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty() {
        SvmClassifier::fit(&[], &[], &SvmConfig::default(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        SvmClassifier::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[0, 1],
            &SvmConfig::default(),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn rejects_wrong_width_at_predict() {
        let (x, y) = blobs(5);
        let svm = SvmClassifier::fit(&x, &y, &SvmConfig::default(), 1);
        svm.predict_one(&[1.0, 2.0, 3.0]);
    }
}
