//! CART decision trees with Gini impurity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features per split; `None` uses all
    /// (single trees) — forests pass `Some(√d)`.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 24, min_samples_split: 2, max_features: None }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: u32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART classifier: binary splits minimizing weighted Gini impurity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    dim: usize,
}

impl DecisionTree {
    /// Grows a tree on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or ragged or `x`/`y` lengths differ.
    pub fn fit(x: &[Vec<f32>], y: &[u32], config: &TreeConfig, seed: u64) -> Self {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "one label per row");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        let n_classes = y.iter().copied().max().unwrap() as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<usize> = (0..x.len()).collect();
        let root = grow(x, y, &indices, n_classes, config, 0, &mut rng);
        Self { root, dim }
    }

    /// Predicted class for one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training data.
    pub fn predict_one(&self, row: &[f32]) -> u32 {
        assert_eq!(row.len(), self.dim, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Predicted classes for many rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Vec<u32> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Tree depth (longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn majority(y: &[u32], indices: &[usize], n_classes: usize) -> u32 {
    let mut counts = vec![0usize; n_classes];
    for &i in indices {
        counts[y[i] as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(c, _)| c as u32)
        .unwrap_or(0)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

#[allow(clippy::too_many_arguments)]
fn grow(
    x: &[Vec<f32>],
    y: &[u32],
    indices: &[usize],
    n_classes: usize,
    config: &TreeConfig,
    depth: usize,
    rng: &mut StdRng,
) -> Node {
    // Stop when pure, too deep, or too small.
    let first = y[indices[0]];
    if depth >= config.max_depth
        || indices.len() < config.min_samples_split
        || indices.iter().all(|&i| y[i] == first)
    {
        return Node::Leaf { class: majority(y, indices, n_classes) };
    }

    let dim = x[0].len();
    let mut feature_pool: Vec<usize> = (0..dim).collect();
    let n_candidates = config.max_features.unwrap_or(dim).clamp(1, dim);
    if n_candidates < dim {
        feature_pool.shuffle(rng);
        feature_pool.truncate(n_candidates);
    }

    let parent_counts = {
        let mut c = vec![0usize; n_classes];
        for &i in indices {
            c[y[i] as usize] += 1;
        }
        c
    };
    let parent_gini = gini(&parent_counts, indices.len());

    let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, score)
    let mut sorted = indices.to_vec();
    for &f in &feature_pool {
        sorted.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
        // Sweep split points between distinct consecutive values.
        let mut left_counts = vec![0usize; n_classes];
        let mut right_counts = parent_counts.clone();
        for k in 0..sorted.len() - 1 {
            let i = sorted[k];
            left_counts[y[i] as usize] += 1;
            right_counts[y[i] as usize] -= 1;
            let (a, b) = (x[sorted[k]][f], x[sorted[k + 1]][f]);
            if a == b {
                continue;
            }
            let nl = k + 1;
            let nr = sorted.len() - nl;
            let score = (nl as f64 * gini(&left_counts, nl)
                + nr as f64 * gini(&right_counts, nr))
                / sorted.len() as f64;
            // Zero-gain splits are allowed (XOR-like data has no
            // first-level gain); recursion still terminates because both
            // children are strictly smaller.
            if best.map_or(score <= parent_gini + 1e-12, |(_, _, s)| score < s) {
                best = Some((f, (a + b) / 2.0, score));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return Node::Leaf { class: majority(y, indices, n_classes) };
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| x[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf { class: majority(y, indices, n_classes) };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(x, y, &left_idx, n_classes, config, depth + 1, rng)),
        right: Box::new(grow(x, y, &right_idx, n_classes, config, depth + 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &(a, b, l) in
            &[(0.0f32, 0.0f32, 0u32), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)]
        {
            for k in 0..5 {
                let j = k as f32 * 0.02;
                x.push(vec![a + j, b - j]);
                y.push(l);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor_exactly() {
        let (x, y) = xor_data();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), 1);
        assert_eq!(tree.predict(&x), y);
        assert!(tree.depth() >= 2); // XOR needs two levels
    }

    #[test]
    fn pure_node_is_a_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1u32, 1, 1];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_one(&[99.0]), 1);
    }

    #[test]
    fn max_depth_limits_growth() {
        let (x, y) = xor_data();
        let cfg = TreeConfig { max_depth: 1, ..Default::default() };
        let tree = DecisionTree::fit(&x, &y, &cfg, 1);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn gini_identities() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1], 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let cfg = TreeConfig { max_features: Some(1), ..Default::default() };
        assert_eq!(DecisionTree::fit(&x, &y, &cfg, 5), DecisionTree::fit(&x, &y, &cfg, 5));
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = vec![vec![1.0, 1.0]; 6];
        let y = vec![0u32, 1, 0, 1, 0, 0];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_one(&[1.0, 1.0]), 0); // majority
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn rejects_mismatched_lengths() {
        DecisionTree::fit(&[vec![1.0]], &[0, 1], &TreeConfig::default(), 0);
    }
}
