//! Multinomial naive Bayes — the classical bag-of-words baseline.
//!
//! The paper frames its text-side attack as text classification; naive
//! Bayes is the canonical reference classifier for BoW features and
//! completes the baseline suite (SVM / RFC / k-NN / NB). Features are
//! treated as (fractional) event counts, which the L1-normalized
//! occurrence-probability vectors of `textrep` are.

use serde::{Deserialize, Serialize};
use sparsemat::{CsrMatrix, SparseVec};

/// Multinomial naive Bayes with Laplace (add-α) smoothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayes {
    /// `log P(class)`.
    log_priors: Vec<f64>,
    /// `log P(feature | class)`, `[class][feature]`.
    log_likelihoods: Vec<Vec<f64>>,
    dim: usize,
}

impl NaiveBayes {
    /// Fits with smoothing parameter `alpha` (1.0 = Laplace).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or ragged, lengths mismatch, `alpha` is
    /// not positive, or any feature value is negative.
    pub fn fit(x: &[Vec<f32>], y: &[u32], alpha: f64) -> Self {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "one label per row");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        assert!(
            x.iter().all(|r| r.iter().all(|&v| v >= 0.0)),
            "multinomial NB needs non-negative counts"
        );
        let n_classes = y.iter().copied().max().expect("non-empty") as usize + 1;

        let mut class_counts = vec![0usize; n_classes];
        let mut feature_sums = vec![vec![0.0f64; dim]; n_classes];
        for (row, &label) in x.iter().zip(y) {
            class_counts[label as usize] += 1;
            for (s, &v) in feature_sums[label as usize].iter_mut().zip(row) {
                *s += v as f64;
            }
        }
        let log_priors = class_counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / x.len() as f64).ln())
            .collect();
        let log_likelihoods = feature_sums
            .into_iter()
            .map(|sums| {
                let total: f64 = sums.iter().sum::<f64>() + alpha * dim as f64;
                sums.into_iter().map(|s| ((s + alpha) / total).ln()).collect()
            })
            .collect();
        Self { log_priors, log_likelihoods, dim }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.log_priors.len()
    }

    /// Per-class log-posterior scores (up to a constant) for one row.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn log_scores(&self, row: &[f32]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim, "feature width mismatch");
        self.log_priors
            .iter()
            .zip(&self.log_likelihoods)
            .map(|(&prior, ll)| {
                prior
                    + ll.iter()
                        .zip(row)
                        .map(|(&l, &v)| l * v as f64)
                        .sum::<f64>()
            })
            .collect()
    }

    /// Predicted class for one row (ties to the lower index).
    pub fn predict_one(&self, row: &[f32]) -> u32 {
        let scores = self.log_scores(row);
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Predictions for many rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Vec<u32> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Fits from CSR rows, accumulating per-class feature sums over
    /// nonzeros only.
    ///
    /// Feature values are non-negative, so every per-class running sum
    /// stays non-negative and skipping `+= 0.0` terms is an exact no-op:
    /// the fitted model is bit-identical to [`NaiveBayes::fit`] on the
    /// densified rows.
    ///
    /// # Panics
    ///
    /// Same contract as [`NaiveBayes::fit`].
    pub fn fit_sparse(x: &CsrMatrix, y: &[u32], alpha: f64) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty dataset");
        assert_eq!(x.n_rows(), y.len(), "one label per row");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let dim = x.n_cols();
        let n_classes = y.iter().copied().max().expect("non-empty") as usize + 1;

        let mut class_counts = vec![0usize; n_classes];
        let mut feature_sums = vec![vec![0.0f64; dim]; n_classes];
        for (i, &label) in y.iter().enumerate() {
            class_counts[label as usize] += 1;
            let (idx, val) = x.row(i);
            let sums = &mut feature_sums[label as usize];
            for (&j, &v) in idx.iter().zip(val) {
                assert!(v >= 0.0, "multinomial NB needs non-negative counts");
                sums[j as usize] += v as f64;
            }
        }
        let log_priors = class_counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / x.n_rows() as f64).ln())
            .collect();
        let log_likelihoods = feature_sums
            .into_iter()
            .map(|sums| {
                let total: f64 = sums.iter().sum::<f64>() + alpha * dim as f64;
                sums.into_iter().map(|s| ((s + alpha) / total).ln()).collect()
            })
            .collect();
        Self { log_priors, log_likelihoods, dim }
    }

    /// Per-class log-posterior scores for one sparse row, summing
    /// `log P(feature|class) · value` over the row's nonzeros only (a
    /// zero feature contributes exactly `±0.0`, which never moves the
    /// accumulator, so scores match [`NaiveBayes::log_scores`] bitwise).
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn log_scores_sparse(&self, row: &SparseVec) -> Vec<f64> {
        assert_eq!(row.dim(), self.dim, "feature width mismatch");
        self.log_priors
            .iter()
            .zip(&self.log_likelihoods)
            .map(|(&prior, ll)| {
                prior
                    + row
                        .iter()
                        .map(|(j, v)| ll[j] * v as f64)
                        .sum::<f64>()
            })
            .collect()
    }

    /// Predicted class for one sparse row (ties to the lower index).
    pub fn predict_one_sparse(&self, row: &SparseVec) -> u32 {
        let scores = self.log_scores_sparse(row);
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Predictions for every row of a CSR matrix.
    pub fn predict_sparse(&self, rows: &CsrMatrix) -> Vec<u32> {
        (0..rows.n_rows()).map(|i| self.predict_one_sparse(&rows.row_vec(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two "vocabulary" distributions: class 0 uses features 0–1,
    /// class 1 uses features 2–3.
    fn corpus() -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = (i as f32 * 0.3).sin().abs() * 0.2;
            x.push(vec![0.6 + t, 0.4 - t, 0.0, 0.0]);
            y.push(0);
            x.push(vec![0.0, 0.0, 0.3 + t, 0.7 - t]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn separates_disjoint_vocabularies() {
        let (x, y) = corpus();
        let nb = NaiveBayes::fit(&x, &y, 1.0);
        assert_eq!(nb.predict(&x), y);
    }

    #[test]
    fn priors_reflect_class_frequencies() {
        let x = vec![vec![1.0f32]; 10];
        let y = vec![0u32, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let nb = NaiveBayes::fit(&x, &y, 1.0);
        // With identical likelihoods, the majority prior wins.
        assert_eq!(nb.predict_one(&[1.0]), 0);
    }

    #[test]
    fn smoothing_handles_unseen_features() {
        let (x, y) = corpus();
        let nb = NaiveBayes::fit(&x, &y, 1.0);
        // A probe using only features never seen with class 0 still
        // yields finite scores and a sane prediction.
        let scores = nb.log_scores(&[0.0, 0.0, 0.5, 0.5]);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(nb.predict_one(&[0.0, 0.0, 0.5, 0.5]), 1);
    }

    #[test]
    fn alpha_controls_regularization() {
        let (x, y) = corpus();
        let sharp = NaiveBayes::fit(&x, &y, 1e-6);
        let smooth = NaiveBayes::fit(&x, &y, 100.0);
        // Heavier smoothing flattens the likelihood gap between classes.
        let probe = vec![1.0f32, 0.0, 0.0, 0.0];
        let gap = |nb: &NaiveBayes| {
            let s = nb.log_scores(&probe);
            (s[0] - s[1]).abs()
        };
        assert!(gap(&sharp) > gap(&smooth));
    }

    #[test]
    fn deterministic() {
        let (x, y) = corpus();
        assert_eq!(NaiveBayes::fit(&x, &y, 1.0), NaiveBayes::fit(&x, &y, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_counts() {
        NaiveBayes::fit(&[vec![-1.0]], &[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        NaiveBayes::fit(&[vec![1.0]], &[0], 0.0);
    }
}
