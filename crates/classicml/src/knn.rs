//! k-nearest-neighbours — the natural baseline for overlap leakage.
//!
//! The paper attributes TM-1's strength to repeated routes: a test
//! profile often has a near-duplicate in training. A k-NN classifier
//! makes that mechanism explicit, so comparing it against the trained
//! models separates "the model memorized a twin" from "the model
//! generalized" (see the `ablation_spectral_baseline` family).

use serde::{Deserialize, Serialize};
use sparsemat::{CsrMatrix, SparseVec};

/// Distance metric for [`KnnClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KnnMetric {
    /// Euclidean (L2) distance.
    #[default]
    Euclidean,
    /// Manhattan (L1) distance — natural for the L1-normalized BoW
    /// probability vectors.
    Manhattan,
}

impl KnnMetric {
    /// Ranking distance between two dense rows. For
    /// [`KnnMetric::Euclidean`] this is the *squared* distance — `√` is
    /// strictly monotone on non-negative inputs, so neighbour ordering
    /// is unchanged and the per-pair `sqrt` is pure waste in a
    /// nearest-neighbour scan.
    fn rank_distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            KnnMetric::Euclidean => {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
            }
            KnnMetric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
        }
    }

    /// Ranking distance between a stored CSR row and a sparse probe
    /// (two-pointer merge over nonzeros; same accumulation order as the
    /// dense scan, so the same value bit for bit).
    fn rank_distance_sparse(&self, rows: &CsrMatrix, i: usize, probe: &SparseVec) -> f32 {
        match self {
            KnnMetric::Euclidean => rows.row_sq_euclidean(i, probe),
            KnnMetric::Manhattan => rows.row_manhattan(i, probe),
        }
    }
}

/// Training rows in whichever layout they arrived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TrainRows {
    Dense(Vec<Vec<f32>>),
    Sparse(CsrMatrix),
}

/// A brute-force k-NN classifier with majority voting (distance ties
/// and vote ties resolve to the smaller index/class, deterministically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    x: TrainRows,
    y: Vec<u32>,
    k: usize,
    dim: usize,
    metric: KnnMetric,
    n_classes: usize,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or ragged, lengths mismatch, or `k == 0`.
    pub fn fit(x: &[Vec<f32>], y: &[u32], k: usize, metric: KnnMetric) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "one label per row");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        let n_classes = y.iter().copied().max().unwrap() as usize + 1;
        Self { x: TrainRows::Dense(x.to_vec()), y: y.to_vec(), k, dim, metric, n_classes }
    }

    /// Stores a CSR training set; neighbour scans then use merged
    /// sparse distances instead of dense row sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, or `k == 0`.
    pub fn fit_sparse(x: &CsrMatrix, y: &[u32], k: usize, metric: KnnMetric) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(x.n_rows() > 0, "cannot fit on an empty dataset");
        assert_eq!(x.n_rows(), y.len(), "one label per row");
        let dim = x.n_cols();
        let n_classes = y.iter().copied().max().unwrap() as usize + 1;
        Self { x: TrainRows::Sparse(x.clone()), y: y.to_vec(), k, dim, metric, n_classes }
    }

    /// Number of neighbours consulted.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Votes over the k nearest training rows given per-row distances.
    fn vote(&self, mut dists: Vec<(f32, usize)>) -> u32 {
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes = vec![0usize; self.n_classes];
        for &(_, i) in &dists[..k] {
            votes[self.y[i] as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(i, &v)| (v, usize::MAX - i))
            .map(|(i, _)| i as u32)
            .expect("at least one class")
    }

    /// Predicts one dense row.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn predict_one(&self, row: &[f32]) -> u32 {
        assert_eq!(row.len(), self.dim, "feature width mismatch");
        let dists: Vec<(f32, usize)> = match &self.x {
            TrainRows::Dense(x) => x
                .iter()
                .enumerate()
                .map(|(i, t)| (self.metric.rank_distance(row, t), i))
                .collect(),
            TrainRows::Sparse(x) => {
                let probe = SparseVec::from_dense(row);
                (0..x.n_rows())
                    .map(|i| (self.metric.rank_distance_sparse(x, i, &probe), i))
                    .collect()
            }
        };
        self.vote(dists)
    }

    /// Predicts one sparse row.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn predict_one_sparse(&self, row: &SparseVec) -> u32 {
        assert_eq!(row.dim(), self.dim, "feature width mismatch");
        let dists: Vec<(f32, usize)> = match &self.x {
            TrainRows::Dense(x) => {
                let dense = row.to_dense();
                x.iter()
                    .enumerate()
                    .map(|(i, t)| (self.metric.rank_distance(&dense, t), i))
                    .collect()
            }
            TrainRows::Sparse(x) => (0..x.n_rows())
                .map(|i| (self.metric.rank_distance_sparse(x, i, row), i))
                .collect(),
        };
        self.vote(dists)
    }

    /// Predicts many dense rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Vec<u32> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Predicts every row of a CSR matrix.
    pub fn predict_sparse(&self, rows: &CsrMatrix) -> Vec<u32> {
        (0..rows.n_rows()).map(|i| self.predict_one_sparse(&rows.row_vec(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f32>>, Vec<u32>) {
        (
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.1],
                vec![5.0, 5.0],
                vec![5.1, 4.9],
                vec![5.2, 5.1],
            ],
            vec![0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn one_nn_recalls_training_points_exactly() {
        let (x, y) = toy();
        let knn = KnnClassifier::fit(&x, &y, 1, KnnMetric::Euclidean);
        assert_eq!(knn.predict(&x), y);
    }

    #[test]
    fn k3_majority_vote() {
        let (x, y) = toy();
        let knn = KnnClassifier::fit(&x, &y, 3, KnnMetric::Euclidean);
        // A point near the class-1 cluster.
        assert_eq!(knn.predict_one(&[4.8, 5.0]), 1);
        // A point near the class-0 cluster: neighbours are the two 0s
        // plus one 1 → majority 0.
        assert_eq!(knn.predict_one(&[0.05, 0.0]), 0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let (x, y) = toy();
        let knn = KnnClassifier::fit(&x, &y, 99, KnnMetric::Euclidean);
        // Global majority is class 1 (3 vs 2).
        assert_eq!(knn.predict_one(&[100.0, 100.0]), 1);
    }

    #[test]
    fn euclidean_ranks_by_squared_distance() {
        let m = KnnMetric::Manhattan;
        let e = KnnMetric::Euclidean;
        assert_eq!(m.rank_distance(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        // No sqrt: the Euclidean ranking distance is the squared value.
        assert_eq!(e.rank_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn sparse_fit_matches_dense_predictions() {
        let (x, y) = toy();
        for metric in [KnnMetric::Euclidean, KnnMetric::Manhattan] {
            let dense = KnnClassifier::fit(&x, &y, 3, metric);
            let csr = CsrMatrix::from_dense_rows(&x);
            let sparse = KnnClassifier::fit_sparse(&csr, &y, 3, metric);
            for row in &x {
                assert_eq!(dense.predict_one(row), sparse.predict_one(row));
                let sv = SparseVec::from_dense(row);
                assert_eq!(dense.predict_one(row), sparse.predict_one_sparse(&sv));
            }
            assert_eq!(dense.predict(&x), sparse.predict_sparse(&csr));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        let (x, y) = toy();
        KnnClassifier::fit(&x, &y, 0, KnnMetric::Euclidean);
    }
}
