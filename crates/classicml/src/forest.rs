//! Random forest: bagged CART trees with majority voting.

use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (the paper uses 100).
    pub n_trees: usize,
    /// Per-tree configuration; `max_features: None` here means √d is
    /// chosen automatically, the standard forest heuristic.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self { n_trees: 100, tree: TreeConfig::default() }
    }
}

/// The paper's RFC: 100 bagged trees, majority vote.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Trains the forest. Trees are grown in parallel on the shared
    /// work-stealing executor (`ELEV_THREADS`-aware); results are
    /// position-stable, so training remains deterministic for a given
    /// seed at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or ragged, lengths mismatch, or
    /// `n_trees == 0`.
    pub fn fit(x: &[Vec<f32>], y: &[u32], config: &ForestConfig, seed: u64) -> Self {
        assert!(config.n_trees > 0, "need at least one tree");
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), y.len(), "one label per row");
        let dim = x[0].len();
        let n_classes = y.iter().copied().max().unwrap() as usize + 1;

        let tree_cfg = TreeConfig {
            max_features: config
                .tree
                .max_features
                .or_else(|| Some(((dim as f64).sqrt().round() as usize).max(1))),
            ..config.tree
        };

        // Pre-draw bootstrap samples sequentially for determinism.
        let mut rng = StdRng::seed_from_u64(seed);
        let bootstraps: Vec<(Vec<Vec<f32>>, Vec<u32>, u64)> = (0..config.n_trees)
            .map(|_| {
                let mut bx = Vec::with_capacity(x.len());
                let mut by = Vec::with_capacity(y.len());
                for _ in 0..x.len() {
                    let i = rng.gen_range(0..x.len());
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                (bx, by, rng.gen())
            })
            .collect();

        let trees = exec::Executor::from_env().map(&bootstraps, |_, (bx, by, tree_seed)| {
            DecisionTree::fit(bx, by, &tree_cfg, *tree_seed)
        });

        Self { trees, n_classes }
    }

    /// Trains from either feature layout.
    ///
    /// Tree growth needs O(1) column access for its split scans, so a
    /// sparse matrix is densified once up front (the forest is the one
    /// text model that keeps a dense view); a dense matrix is borrowed
    /// as-is. Either way the training computation — and therefore the
    /// fitted forest — is identical to [`RandomForest::fit`] on dense
    /// rows.
    pub fn fit_matrix(
        x: &sparsemat::FeatureMatrix,
        y: &[u32],
        config: &ForestConfig,
        seed: u64,
    ) -> Self {
        Self::fit(&x.to_dense_rows(), y, config, seed)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes the forest votes over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class-vote histogram for one row.
    pub fn votes(&self, row: &[f32]) -> Vec<usize> {
        let mut votes = Vec::with_capacity(self.n_classes);
        self.votes_into(row, &mut votes);
        votes
    }

    /// [`votes`](Self::votes) into a caller-owned buffer (cleared and
    /// re-zeroed first) — the serving hot path's allocation-free
    /// variant: once `out` has warmed to `n_classes` capacity, no heap
    /// allocation occurs.
    pub fn votes_into(&self, row: &[f32], out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.n_classes, 0);
        for tree in &self.trees {
            out[tree.predict_one(row) as usize] += 1;
        }
    }

    /// Majority-vote prediction for one row (ties go to the lower
    /// class index, deterministically).
    pub fn predict_one(&self, row: &[f32]) -> u32 {
        let votes = self.votes(row);
        votes
            .iter()
            .enumerate()
            .max_by_key(|(i, &v)| (v, usize::MAX - i))
            .map(|(i, _)| i as u32)
            .expect("at least one class")
    }

    /// Predictions for many rows.
    pub fn predict(&self, rows: &[Vec<f32>]) -> Vec<u32> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let j = (i as f32 * 0.31).sin() * 0.3;
            x.push(vec![2.0 + j, 2.0 - j]);
            y.push(0);
            x.push(vec![-2.0 + j, -2.0 - j]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn forest_separates_blobs() {
        let (x, y) = blobs(25);
        let cfg = ForestConfig { n_trees: 20, ..Default::default() };
        let forest = RandomForest::fit(&x, &y, &cfg, 3);
        assert_eq!(forest.predict(&x), y);
    }

    #[test]
    fn votes_sum_to_tree_count() {
        let (x, y) = blobs(10);
        let cfg = ForestConfig { n_trees: 15, ..Default::default() };
        let forest = RandomForest::fit(&x, &y, &cfg, 3);
        let votes = forest.votes(&x[0]);
        assert_eq!(votes.iter().sum::<usize>(), 15);
    }

    #[test]
    fn deterministic_despite_parallelism() {
        let (x, y) = blobs(10);
        let cfg = ForestConfig { n_trees: 12, ..Default::default() };
        let a = RandomForest::fit(&x, &y, &cfg, 7);
        let b = RandomForest::fit(&x, &y, &cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn default_matches_paper_tree_count() {
        assert_eq!(ForestConfig::default().n_trees, 100);
    }

    #[test]
    fn forest_beats_single_stump_on_noisy_data() {
        // Noisy labels: ensemble should at least match one shallow tree.
        let (mut x, mut y) = blobs(30);
        for i in (0..y.len()).step_by(7) {
            y[i] = 1 - y[i]; // inject label noise
            x[i][0] += 0.1;
        }
        let stump = crate::tree::DecisionTree::fit(
            &x,
            &y,
            &TreeConfig { max_depth: 1, ..Default::default() },
            1,
        );
        let forest =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 30, ..Default::default() }, 1);
        let acc = |pred: Vec<u32>| pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(acc(forest.predict(&x)) >= acc(stump.predict(&x)));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_zero_trees() {
        let (x, y) = blobs(2);
        RandomForest::fit(&x, &y, &ForestConfig { n_trees: 0, ..Default::default() }, 0);
    }
}
