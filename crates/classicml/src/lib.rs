//! Classic machine-learning models of the paper's text-side attack.
//!
//! - [`SvmClassifier`]: a linear one-vs-rest support vector machine
//!   trained with the Pegasos stochastic sub-gradient method on the
//!   hinge loss ("the standard SVM, where the objective is to find the
//!   best hyperplane separating classes"),
//! - [`RandomForest`]: "the standard RFC, with 100 trees, and a
//!   majority voting ... over the outcomes of those trees", built from
//!   CART [`DecisionTree`]s with Gini impurity, bootstrap sampling, and
//!   √d feature subsampling, trained in parallel with crossbeam,
//! - [`KnnClassifier`]: a k-nearest-neighbours baseline that makes the
//!   paper's overlap-leakage mechanism explicit (a repeated route's
//!   near-twin sits in the training set).
//!
//! Models consume either dense `Vec<f32>` feature rows or the sparse
//! CSR layout of `sparsemat` (the BoW vectors of `textrep` are >95%
//! zeros at realistic vocabulary sizes): the SVM, naive Bayes, and k-NN
//! walk nonzeros directly (`fit_sparse`/`predict_sparse`), while the
//! forest densifies once per fit via `sparsemat::FeatureMatrix`. The
//! sparse paths are bit-compatible with the dense ones — same
//! accumulation order, only exact-zero terms skipped — so a given seed
//! produces the same model and predictions in either layout. All models
//! are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use classicml::SvmClassifier;
//!
//! let x = vec![
//!     vec![0.0, 1.0], vec![0.1, 0.9], vec![1.0, 0.0], vec![0.9, 0.2],
//! ];
//! let y = vec![0u32, 0, 1, 1];
//! let svm = SvmClassifier::fit(&x, &y, &Default::default(), 7);
//! assert_eq!(svm.predict(&x), y);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bayes;
mod forest;
mod knn;
mod svm;
mod tree;

pub use bayes::NaiveBayes;
pub use forest::{ForestConfig, RandomForest};
pub use knn::{KnnClassifier, KnnMetric};
pub use svm::{SvmClassifier, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};
