//! Classic machine-learning models of the paper's text-side attack.
//!
//! - [`SvmClassifier`]: a linear one-vs-rest support vector machine
//!   trained with the Pegasos stochastic sub-gradient method on the
//!   hinge loss ("the standard SVM, where the objective is to find the
//!   best hyperplane separating classes"),
//! - [`RandomForest`]: "the standard RFC, with 100 trees, and a
//!   majority voting ... over the outcomes of those trees", built from
//!   CART [`DecisionTree`]s with Gini impurity, bootstrap sampling, and
//!   √d feature subsampling, trained in parallel with crossbeam,
//! - [`KnnClassifier`]: a k-nearest-neighbours baseline that makes the
//!   paper's overlap-leakage mechanism explicit (a repeated route's
//!   near-twin sits in the training set).
//!
//! Both models consume dense `Vec<f32>` feature rows (the BoW vectors
//! of `textrep`) and `u32` labels, and are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use classicml::SvmClassifier;
//!
//! let x = vec![
//!     vec![0.0, 1.0], vec![0.1, 0.9], vec![1.0, 0.0], vec![0.9, 0.2],
//! ];
//! let y = vec![0u32, 0, 1, 1];
//! let svm = SvmClassifier::fit(&x, &y, &Default::default(), 7);
//! assert_eq!(svm.predict(&x), y);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bayes;
mod forest;
mod knn;
mod svm;
mod tree;

pub use bayes::NaiveBayes;
pub use forest::{ForestConfig, RandomForest};
pub use knn::{KnnClassifier, KnnMetric};
pub use svm::{SvmClassifier, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};
