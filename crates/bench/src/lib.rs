//! Shared scaffolding for the experiment binaries.
//!
//! Every `src/bin/*` target regenerates one table or figure of the
//! paper. They share this crate's plain-text table renderer and the
//! seed/scale banner, so outputs are uniform and reproducible. Set
//! `ELEV_SCALE=full` for paper-scale runs (minutes); the default
//! `quick` scale finishes in seconds. Set `ELEV_SEED=<u64>` to change
//! the master seed (default 42), and `ELEV_THREADS=<n>` to size the
//! worker pool (results are bit-identical at every thread count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use elev_core::experiments::ExperimentScale;
use evalkit::FoldOutcome;

/// The master seed for an experiment run (`ELEV_SEED`, default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("ELEV_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Prints the standard banner and returns `(seed, scale)`.
pub fn start(experiment: &str, paper_ref: &str) -> (u64, ExperimentScale) {
    let seed = seed_from_env();
    let scale = ExperimentScale::from_env();
    let mode = if scale == ExperimentScale::full() {
        "full"
    } else if scale == ExperimentScale::medium() {
        "medium"
    } else {
        "quick"
    };
    let threads = exec::Executor::from_env().threads();
    println!("== {experiment} — reproducing {paper_ref} ==");
    println!("seed {seed}, scale {mode} ({scale:?}), threads {threads}");
    println!();
    (seed, scale)
}

/// A minimal fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
        .validate()
    }

    fn validate(self) -> Self {
        assert!(!self.header.is_empty(), "table needs columns");
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a percentage with one decimal, like the paper's tables.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Standard A/R/F1 cells for a [`FoldOutcome`] (the Tables V/VI layout;
/// A is the paper's one-vs-rest accuracy, see `evalkit` docs).
pub fn arf_cells(o: &FoldOutcome) -> Vec<String> {
    vec![pct(o.ovr_accuracy), pct(o.recall), pct(o.f1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn pct_formats_like_paper() {
        assert_eq!(pct(0.9583), "95.8");
        assert_eq!(pct(1.0), "100.0");
    }
}
