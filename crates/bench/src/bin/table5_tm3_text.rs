//! Regenerates paper Table V: TM-3 city identification on the
//! city-level dataset — A/R/F1 for C ∈ {3, 5, 7, 8, 10}.

use bench::{arf_cells, pct, start, TextTable};
use elev_core::experiments::{table5_tm3, Corpora};

/// Paper Table V (A, R, F1) per (C, model).
const PAPER: [(usize, &str, f64, f64, f64); 15] = [
    (3, "SVM", 80.0, 69.8, 70.2),
    (3, "RFC", 79.1, 68.4, 68.4),
    (3, "MLP", 80.9, 71.2, 71.6),
    (5, "SVM", 90.7, 77.7, 78.4),
    (5, "RFC", 89.4, 74.8, 76.0),
    (5, "MLP", 90.5, 77.4, 78.4),
    (7, "SVM", 90.7, 66.7, 66.5),
    (7, "RFC", 89.0, 61.1, 61.0),
    (7, "MLP", 90.0, 64.3, 64.4),
    (8, "SVM", 91.9, 68.6, 68.5),
    (8, "RFC", 88.9, 57.0, 60.3),
    (8, "MLP", 90.9, 65.1, 64.5),
    (10, "SVM", 93.9, 70.2, 70.4),
    (10, "RFC", 92.4, 58.1, 57.5),
    (10, "MLP", 92.9, 63.7, 63.3),
];

fn main() {
    let (seed, scale) = start("table5_tm3_text", "Table V (TM-3, text representation)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = table5_tm3(&corpora.city, &scale, seed);

    let mut t = TextTable::new(&[
        "C", "S", "model", "A", "R", "F1", "paper A", "paper R", "paper F1",
    ]);
    for r in &rows {
        let paper = PAPER
            .iter()
            .find(|(pc, pm, _, _, _)| *pc == r.classes && *pm == r.model.to_string());
        let mut cells = vec![r.classes.to_string(), r.per_class.to_string(), r.model.to_string()];
        cells.extend(arf_cells(&r.outcome));
        match paper {
            Some((_, _, a, rec, f1)) => {
                cells.push(format!("{a:.1}"));
                cells.push(format!("{rec:.1}"));
                cells.push(format!("{f1:.1}"));
            }
            None => cells.extend(["-".into(), "-".into(), "-".into()]),
        }
        t.row(cells);
    }
    t.print();
    println!();
    println!("A is the one-vs-rest accuracy (see evalkit docs: the paper's A column rises");
    println!("with C while macro recall falls — the signature of per-class binary accuracy).");
    println!(
        "multiclass fraction-correct at C=10 for reference: {}",
        rows.iter()
            .filter(|r| r.classes == rows.last().map_or(0, |l| l.classes))
            .map(|r| format!("{} {}", r.model, pct(r.outcome.accuracy)))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
