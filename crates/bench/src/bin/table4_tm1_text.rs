//! Regenerates paper Table IV: TM-1 prediction accuracy on the
//! user-specific dataset — SVM/RFC/MLP × {5, 10}-fold × C ∈ {2, 3, 4}.

use bench::{pct, start, TextTable};
use elev_core::experiments::{table4_tm1, Corpora};
use elev_core::text::TextModel;

/// Paper Table IV accuracies, (C, model, 5-f, 10-f).
const PAPER: [(usize, &str, f64, f64); 9] = [
    (2, "SVM", 97.8, 97.8),
    (2, "RFC", 96.5, 97.2),
    (2, "MLP", 98.0, 98.5),
    (3, "SVM", 98.3, 98.5),
    (3, "RFC", 96.3, 97.0),
    (3, "MLP", 97.4, 97.6),
    (4, "SVM", 86.8, 87.5),
    (4, "RFC", 91.0, 94.4),
    (4, "MLP", 93.0, 95.8),
];

fn main() {
    let (seed, scale) = start("table4_tm1_text", "Table IV (TM-1, text representation)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = table4_tm1(&corpora.user, &scale, seed);

    let mut t = TextTable::new(&["C", "S", "model", "acc 5-f", "acc 10-f", "paper 5-f", "paper 10-f"]);
    for c in [2usize, 3, 4] {
        for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
            let half: Vec<_> = rows
                .iter()
                .filter(|r| r.classes == c && r.model == model)
                .collect();
            if half.len() != 2 {
                continue;
            }
            let (five, ten) = (&half[0], &half[1]);
            let paper = PAPER
                .iter()
                .find(|(pc, pm, _, _)| *pc == c && *pm == model.to_string())
                .expect("paper row exists");
            t.row(vec![
                c.to_string(),
                five.per_class.to_string(),
                model.to_string(),
                pct(five.outcome.accuracy),
                pct(ten.outcome.accuracy),
                format!("{:.1}", paper.2),
                format!("{:.1}", paper.3),
            ]);
        }
    }
    t.print();
    println!();
    println!("shape checks: TM-1 accuracy is high (>85% at paper scale) because the");
    println!("athlete's routes repeat (~35% overlap); C=4 is hardest (S is tiny).");
}
