//! Regenerates paper Table VIII: fine-tuning vs training budget for
//! TM-1 and TM-3 (accuracy / recall / specificity / F1).
//!
//! The paper sweeps epoch sizes {500, 1000, 2000}; this reproduction
//! sweeps proportional budgets {½·E, E, 2·E} of the configured scale's
//! per-round epoch count E — the shape to check is the *inverted U*:
//! the middle budget wins, the largest overfits.

use bench::{pct, start, TextTable};
use elev_core::experiments::{table8_finetune_epochs, Corpora};

/// Paper Table VIII: (setting, epoch, accuracy, recall, specificity, F1).
const PAPER: [(&str, usize, f64, f64, f64, f64); 6] = [
    ("TM-1", 500, 79.3, 55.8, 86.3, 58.6),
    ("TM-1", 1000, 87.9, 67.5, 92.6, 68.2),
    ("TM-1", 2000, 82.7, 63.1, 88.4, 63.3),
    ("TM-3", 500, 86.0, 29.7, 92.2, 36.2),
    ("TM-3", 1000, 89.0, 45.3, 93.9, 45.4),
    ("TM-3", 2000, 87.8, 38.9, 93.2, 41.1),
];

fn main() {
    let (seed, scale) = start("table8_finetune_epochs", "Table VIII (fine-tuning epoch sweep)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = table8_finetune_epochs(&corpora, &scale, seed);

    let mut t = TextTable::new(&["setting", "epochs/round", "A", "R", "Spec", "F1"]);
    for (setting, epochs, o) in &rows {
        t.row(vec![
            setting.clone(),
            epochs.to_string(),
            pct(o.ovr_accuracy),
            pct(o.recall),
            pct(o.specificity),
            pct(o.f1),
        ]);
    }
    t.print();
    println!();
    println!("paper values (epoch size 500 / 1000 / 2000):");
    let mut p = TextTable::new(&["setting", "epochs", "A", "R", "Spec", "F1"]);
    for (s, e, a, r, sp, f1) in PAPER {
        p.row(vec![
            s.to_owned(),
            e.to_string(),
            format!("{a:.1}"),
            format!("{r:.1}"),
            format!("{sp:.1}"),
            format!("{f1:.1}"),
        ]);
    }
    p.print();
}
