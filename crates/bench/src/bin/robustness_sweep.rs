//! Robustness sweep: attack accuracy vs corruption rate, with full
//! quarantine accounting (not a paper artifact — this probes how the
//! reproduction degrades on damaged real-world corpora).
//!
//! Environment knobs on top of the usual `ELEV_*` set:
//!
//! - `ELEV_FAULT_RATE` — sweep only this corruption rate (default:
//!   the stock 0 / 0.05 / 0.1 / 0.2 / 0.4 ladder);
//! - `ELEV_FAULT_SEED` — corruption seed (default `0xFA17`);
//! - `ELEV_FAULT_KINDS` — restrict the injected fault kinds.

use bench::{pct, start, TextTable};
use elev_core::experiments::Corpora;
use elev_core::robustness::{
    robustness_sweep, substrate_sweep, zero_rate_is_identity, DEFAULT_RATES,
};
use faultsim::FaultPlan;
use std::time::Instant;

fn main() {
    let (seed, scale) = start("robustness_sweep", "accuracy under fault injection (robustness)");
    let t0 = Instant::now();
    let env_plan = FaultPlan::from_env();
    let rates: Vec<f64> = if env_plan.track_rate > 0.0 {
        vec![env_plan.track_rate]
    } else {
        DEFAULT_RATES.to_vec()
    };
    let corpora = Corpora::generate(seed, &scale);

    // The anchor invariant: a zero-rate plan must reproduce the clean
    // corpus bit-for-bit (no false repairs, nothing quarantined).
    assert!(
        zero_rate_is_identity(&corpora.user, env_plan.seed),
        "zero-rate ingestion altered the clean corpus"
    );
    println!("zero-rate invariance: OK (clean corpus reproduced exactly)");
    println!();

    let points = robustness_sweep(&corpora, &scale, seed, env_plan.seed, &rates);

    let mut table =
        TextTable::new(&["rate", "setting", "tracks", "clean", "repaired", "quar", "folds", "A"]);
    for p in &points {
        table.row(vec![
            format!("{:.2}", p.rate),
            p.setting.clone(),
            p.report.tracks.len().to_string(),
            p.report.clean().to_string(),
            p.report.repaired().to_string(),
            p.report.quarantined().to_string(),
            p.folds.to_string(),
            pct(p.outcome.ovr_accuracy),
        ]);
    }
    println!("accuracy vs corruption rate (MLP text attack on survivors):");
    table.print();
    println!();

    let mut acct = TextTable::new(&["rate", "kind", "injected", "repaired", "quar", "undetected"]);
    for &rate in &rates {
        if rate == 0.0 {
            continue;
        }
        for kind in faultsim::FaultKind::ALL {
            let (mut inj, mut rep, mut quar, mut und) = (0usize, 0usize, 0usize, 0usize);
            for p in points.iter().filter(|p| p.rate == rate) {
                if let Some(a) = p.accounting.iter().find(|a| a.kind == kind) {
                    inj += a.injected;
                    rep += a.repaired;
                    quar += a.quarantined;
                    und += a.undetected;
                }
            }
            acct.row(vec![
                format!("{rate:.2}"),
                kind.name().to_owned(),
                inj.to_string(),
                rep.to_string(),
                quar.to_string(),
                und.to_string(),
            ]);
        }
    }
    println!("ground-truth fault accounting (TM-1 + TM-3 combined):");
    acct.print();
    println!();

    let mut sub = TextTable::new(&[
        "rate", "DEM voids", "filled", "worst err m", "svc requests", "retried", "exhausted",
        "backoff",
    ]);
    for s in substrate_sweep(&rates, env_plan.seed) {
        sub.row(vec![
            format!("{:.2}", s.rate),
            format!("{}/{}", s.dem_voids, s.dem_cells),
            s.dem_filled.to_string(),
            format!("{:.2}", s.dem_worst_err_m),
            s.service.requests.to_string(),
            s.service.transient_failures.to_string(),
            s.service.exhausted.to_string(),
            s.service.backoff_units.to_string(),
        ]);
    }
    println!("substrate fault models (DEM voids at rate/4, flaky service at rate/4):");
    sub.print();
    println!();

    // Machine-readable per-rate quarantine reports (consumed by
    // scripts/verify.sh; each marker line is followed by one JSON
    // object).
    for p in &points {
        println!("quarantine-report-json ({} @ rate {:.2}):", p.setting, p.rate);
        println!("{}", p.report.to_json());
    }
    println!();
    println!("total wall time {:?}", t0.elapsed());
}
