//! Golden-artifact emitter: recomputes every pinned pipeline stage and
//! reports it against the committed registry — the CLI face of
//! `cargo test -p conformance --test golden`.
//!
//! Modes:
//!
//! - default: compute the stage table, compare against
//!   `crates/conformance/goldens/quick.txt`, exit nonzero on mismatch
//!   (with `UPDATE_GOLDENS=1` the pins are rewritten instead);
//! - `--fuzz [iterations]`: run the deterministic fuzz campaign and
//!   print its error-class histogram;
//! - `--emit-corpus <dir>`: regenerate the minimized fuzz exemplars
//!   that seed `crates/gpxfile/tests/corpus/`.

use conformance::fuzz::{minimized_exemplars, run_campaign, FuzzConfig};
use conformance::{check_or_update, compute_stages};
use std::time::Instant;

/// Error classes the committed corpus carries exemplars for — one per
/// structurally distinct parse/ingest failure the mutator reaches.
const CORPUS_CLASSES: [&str; 4] =
    ["xml.entity", "xml.mismatch", "gpx.bad_trkpt", "quarantine.too_corrupt"];

fn main() {
    let seed = bench::seed_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--fuzz") => {
            let iterations = args
                .get(1)
                .map(|s| s.parse().expect("--fuzz iterations must be an integer"))
                .unwrap_or(10_000);
            let cfg = FuzzConfig { seed, iterations };
            let t0 = Instant::now();
            let report = run_campaign(&cfg, &exec::Executor::from_env());
            println!("{}", report.render());
            println!("elapsed: {:.2?}", t0.elapsed());
            if !report.panics.is_empty() {
                eprintln!("PANICS escaped the isolation boundary: {:?}", report.panics);
                std::process::exit(1);
            }
        }
        Some("--emit-corpus") => {
            let dir = args.get(1).expect("--emit-corpus needs a target directory");
            let cfg = FuzzConfig { seed, iterations: 10_000 };
            let exemplars = minimized_exemplars(&cfg, &CORPUS_CLASSES);
            std::fs::create_dir_all(dir).expect("create corpus dir");
            for (class, doc) in &exemplars {
                let name = format!("fuzz_{}.gpx", class.replace('.', "_"));
                let path = std::path::Path::new(dir).join(&name);
                std::fs::write(&path, doc).expect("write fixture");
                println!("{} ({} bytes) -> {}", class, doc.len(), path.display());
            }
            for class in CORPUS_CLASSES {
                if !exemplars.contains_key(class) {
                    eprintln!("no exemplar found for class {class}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            println!("conformance stage registry (seed {seed})\n");
            let t0 = Instant::now();
            let stages = compute_stages(seed);
            match check_or_update(&stages) {
                Ok(report) => println!("{report}"),
                Err(report) => {
                    eprintln!("{report}");
                    std::process::exit(1);
                }
            }
            println!("computed {} stages in {:.2?}", stages.len(), t0.elapsed());
        }
    }
}
