//! Regenerates paper Fig. 1: the 60-participant survey statistics.

use bench::{start, TextTable};
use surveysim::{Survey, PAPER_N};

fn main() {
    let (seed, _) = start("fig1_survey", "Fig. 1 (survey results)");
    let survey = Survey::sample(PAPER_N, seed);

    let mut a = TextTable::new(&["start point", "%", "paper %"]);
    let start_pct = survey.start_point_percentages();
    for (place, measured, paper) in [
        ("home", start_pct[0], 51.0),
        ("school", start_pct[1], 36.0),
        ("work", start_pct[2], 3.0),
        ("other", start_pct[3], 10.0),
    ] {
        a.row(vec![place.into(), format!("{measured:.1}"), format!("{paper:.1}")]);
    }
    println!("(a) starting point");
    a.print();
    println!();

    let mut b = TextTable::new(&["end point", "%", "paper %"]);
    let end_pct = survey.end_point_percentages();
    for (place, measured, paper) in [
        ("home", end_pct[0], 76.0),
        ("school", end_pct[1], 17.0),
        ("work", end_pct[2], 5.0),
        ("other", end_pct[3], 2.0),
    ] {
        b.row(vec![place.into(), format!("{measured:.1}"), format!("{paper:.1}")]);
    }
    println!("(b) end point");
    b.print();
    println!();

    let mut c = TextTable::new(&["no location = privacy?", "%", "paper %"]);
    let privacy = survey.privacy_belief_percentages();
    for (belief, measured, paper) in [
        ("yes", privacy[0], 42.0),
        ("uncertain", privacy[1], 30.0),
        ("no", privacy[2], 28.0),
    ] {
        c.row(vec![belief.into(), format!("{measured:.1}"), format!("{paper:.1}")]);
    }
    println!("(c) not sharing location implies privacy");
    c.print();
    println!();

    let map = survey.map_hiding_percentages();
    println!(
        "map-hiding belief (§I): yes {:.1}% / maybe {:.1}% / no {:.1}% (paper: 41.7/30.0/28.3)",
        map[0], map[1], map[2]
    );
    let (anchored_start, anchored_end) = survey.anchored_fractions();
    println!(
        "activities anchored at home/school/work: start {:.0}% (paper 90%), end {:.0}% (paper 98%)",
        anchored_start * 100.0,
        anchored_end * 100.0
    );
}
