//! Regenerates paper Fig. 9: TM-2 MLP accuracy, original mined data vs
//! the 30–34% overlap-injected simulation, per city.

use bench::{pct, start, TextTable};
use elev_core::experiments::{fig9_tm2_overlap, Corpora};

fn main() {
    let (seed, scale) = start("fig9_tm2_overlap", "Fig. 9 (TM-2 overlap simulation)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = fig9_tm2_overlap(&corpora.boroughs, &scale, seed);

    let mut t = TextTable::new(&["city", "original A", "overlapped A", "delta"]);
    let mut improved = 0usize;
    for (city, original, injected) in &rows {
        let delta = injected.ovr_accuracy - original.ovr_accuracy;
        if delta > 0.0 {
            improved += 1;
        }
        t.row(vec![
            city.abbrev().to_owned(),
            pct(original.ovr_accuracy),
            pct(injected.ovr_accuracy),
            format!("{:+.1}", delta * 100.0),
        ]);
    }
    t.print();
    println!();
    println!(
        "{improved}/{} cities improve with injected overlap — the paper's hypothesis that \
         repeated routes are what make targeted (TM-1-style) attacks strong",
        rows.len()
    );
}
