//! Regenerates paper Table II: the city-level mined dataset
//! distribution, via the Fig. 4 grid-mining pipeline.

use bench::{start, TextTable};
use datasets::city_level;

fn main() {
    let (seed, scale) = start("table2_city_dataset", "Table II + Fig. 4 (city-level mining)");
    let counts: Vec<_> = city_level::TABLE_II
        .iter()
        .map(|&(c, n)| {
            let scaled =
                (((n as f64) * scale.dataset_fraction).round() as usize).max(scale.min_per_class);
            (c, scaled)
        })
        .collect();
    let ds = city_level::build_with_counts(seed, &counts);

    let mut t = TextTable::new(&["city", "samples", "paper"]);
    for (label, name) in ds.label_names().iter().enumerate() {
        let paper = city_level::TABLE_II
            .iter()
            .find(|(c, _)| c.name() == name)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        t.row(vec![name.clone(), ds.class_counts()[label].to_string(), paper.to_string()]);
    }
    t.print();
    println!();
    println!("total {} samples across {} cities", ds.len(), ds.n_classes());
    println!(
        "overlapped fraction (IoU > 0.5): {:.3} — mined regions are disjoint, as the paper notes",
        ds.overlapped_fraction(0.5)
    );
}
