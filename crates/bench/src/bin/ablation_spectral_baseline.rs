//! Reproduces the paper's motivating negative result (§I): "simple
//! features of elevation profiles, e.g., spectral features, are
//! insufficient" — comparing FFT + route-statistics features against
//! the devised text-like representation on TM-1 and TM-3.

use bench::{pct, start, TextTable};
use datasets::split::balanced_downsample;
use elev_core::experiments::Corpora;
use elev_core::spectral::evaluate_spectral;
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use textrep::Discretizer;

fn main() {
    let (seed, scale) =
        start("ablation_spectral_baseline", "§I: spectral features are insufficient");
    let corpora = Corpora::generate(seed, &scale);

    let keep: Vec<u32> = corpora.city.classes_by_size().into_iter().take(5).collect();
    let filtered = corpora.city.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let tm3 = balanced_downsample(&filtered, s, seed);

    let cfg = TextAttackConfig {
        folds: scale.folds,
        mlp_epochs: scale.mlp_epochs,
        seed,
        ..Default::default()
    };

    let mut t = TextTable::new(&["setting", "model", "spectral acc", "text acc", "winner"]);
    for (name, ds, discretizer) in [
        ("TM-1 (4 regions)", &corpora.user, Discretizer::Floor),
        ("TM-3 (5 cities)", &tm3, Discretizer::mined()),
    ] {
        for model in [TextModel::Svm, TextModel::Mlp] {
            let spectral = evaluate_spectral(ds, model, &cfg).outcome().accuracy;
            let text = evaluate_text(ds, discretizer, model, &cfg).outcome().accuracy;
            t.row(vec![
                name.to_owned(),
                model.to_string(),
                pct(spectral),
                pct(text),
                if text >= spectral { "text".into() } else { "spectral".into() },
            ]);
        }
    }
    t.print();
    println!();
    println!("the spectral baseline captures roughness but discards the elevation");
    println!("*sequence* structure that the n-gram representation preserves — the gap");
    println!("is the paper's justification for the text/image representations.");
}
