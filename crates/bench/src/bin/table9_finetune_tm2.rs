//! Regenerates paper Table IX: fine-tuning results for the six TM-2
//! cities (accuracy / recall / specificity / F1).

use bench::{pct, start, TextTable};
use elev_core::experiments::{table9_finetune_tm2, Corpora};

/// Paper Table IX per city: (abbrev, A, R, Spec, F1).
const PAPER: [(&str, f64, f64, f64, f64); 6] = [
    ("LA", 63.6, 28.0, 75.8, 28.8),
    ("MIA", 62.5, 25.6, 75.9, 28.6),
    ("NJ", 57.1, 40.0, 66.7, 37.5),
    ("NYC", 72.8, 18.1, 83.4, 18.4),
    ("SF", 65.4, 30.7, 76.3, 31.4),
    ("WDC", 71.5, 73.2, 73.2, 73.4),
];

fn main() {
    let (seed, scale) = start("table9_finetune_tm2", "Table IX (TM-2 fine-tuning)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = table9_finetune_tm2(&corpora, &scale, seed);

    let mut t = TextTable::new(&[
        "city", "A", "R", "Spec", "F1", "paper A", "paper R", "paper Spec", "paper F1",
    ]);
    for (city, o) in &rows {
        let paper = PAPER.iter().find(|(s, ..)| *s == city.abbrev());
        let mut cells = vec![
            city.abbrev().to_owned(),
            pct(o.ovr_accuracy),
            pct(o.recall),
            pct(o.specificity),
            pct(o.f1),
        ];
        match paper {
            Some((_, a, r, sp, f1)) => {
                cells.push(format!("{a:.1}"));
                cells.push(format!("{r:.1}"));
                cells.push(format!("{sp:.1}"));
                cells.push(format!("{f1:.1}"));
            }
            None => cells.extend(std::iter::repeat_n("-".to_owned(), 4)),
        }
        t.row(cells);
    }
    t.print();
    println!();
    println!("shape: fine-tuning recalls are low for most cities (data lost building");
    println!("rounds); WDC, whose dataset yields a single round, is the outlier — as in");
    println!("the paper, where fine-tuning only won for TM-2: WDC.");
}
