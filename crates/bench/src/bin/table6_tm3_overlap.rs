//! Regenerates paper Table VI: TM-3 with 35% injected overlap.

use bench::{arf_cells, start, TextTable};
use elev_core::experiments::{table5_tm3, table6_tm3_overlap, Corpora};

/// Paper Table VI (A, R, F1) per (C, model).
const PAPER: [(usize, &str, f64, f64, f64); 15] = [
    (3, "SVM", 91.7, 82.7, 82.8),
    (3, "RFC", 89.0, 77.8, 79.1),
    (3, "MLP", 92.4, 84.0, 84.1),
    (5, "SVM", 94.6, 81.6, 81.2),
    (5, "RFC", 93.7, 78.7, 78.4),
    (5, "MLP", 95.6, 85.0, 84.7),
    (7, "SVM", 93.6, 72.1, 72.5),
    (7, "RFC", 92.4, 68.4, 68.8),
    (7, "MLP", 93.9, 73.4, 73.4),
    (8, "SVM", 94.7, 75.4, 74.9),
    (8, "RFC", 93.2, 67.8, 66.9),
    (8, "MLP", 94.6, 74.9, 74.2),
    (10, "SVM", 94.4, 71.4, 72.5),
    (10, "RFC", 93.6, 67.7, 66.9),
    (10, "MLP", 93.6, 68.9, 69.8),
];

fn main() {
    let (seed, scale) = start("table6_tm3_overlap", "Table VI (TM-3, 35% overlap)");
    let corpora = Corpora::generate(seed, &scale);
    let injected_rows = table6_tm3_overlap(&corpora.city, &scale, seed);
    let original_rows = table5_tm3(&corpora.city, &scale, seed);

    let mut t = TextTable::new(&[
        "C", "S", "model", "A", "R", "F1", "orig A", "paper A", "paper R", "paper F1",
    ]);
    let mut gains = 0usize;
    let mut compared = 0usize;
    for r in &injected_rows {
        let orig = original_rows
            .iter()
            .find(|o| o.classes == r.classes && o.model == r.model);
        let paper = PAPER
            .iter()
            .find(|(pc, pm, _, _, _)| *pc == r.classes && *pm == r.model.to_string());
        let mut cells = vec![r.classes.to_string(), r.per_class.to_string(), r.model.to_string()];
        cells.extend(arf_cells(&r.outcome));
        match orig {
            Some(o) => {
                if r.outcome.ovr_accuracy >= o.outcome.ovr_accuracy {
                    gains += 1;
                }
                compared += 1;
                cells.push(bench::pct(o.outcome.ovr_accuracy));
            }
            None => cells.push("-".into()),
        }
        match paper {
            Some((_, _, a, rec, f1)) => {
                cells.push(format!("{a:.1}"));
                cells.push(format!("{rec:.1}"));
                cells.push(format!("{f1:.1}"));
            }
            None => cells.extend(["-".into(), "-".into(), "-".into()]),
        }
        t.row(cells);
    }
    t.print();
    println!();
    println!(
        "{gains}/{compared} settings improve or hold with overlap — \"having similar patterns \
         in a dataset affects the success of the attack\" (paper §IV-A1)"
    );
}
