//! Ablation: the vocabulary feature-selection knobs (paper §III-C —
//! "features whose term frequency is under the specified threshold are
//! discarded").

use bench::{pct, start, TextTable};
use datasets::split::balanced_downsample;
use elev_core::experiments::Corpora;
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use textrep::{Discretizer, FeatureSelection};

fn main() {
    let (seed, scale) =
        start("ablation_feature_threshold", "design choice: term-frequency feature selection");
    let corpora = Corpora::generate(seed, &scale);
    let keep: Vec<u32> = corpora.city.classes_by_size().into_iter().take(5).collect();
    let filtered = corpora.city.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let ds = balanced_downsample(&filtered, s, seed);

    let mut t = TextTable::new(&["tf threshold", "max features", "MLP A", "MLP acc"]);
    for (tf, max) in [
        (1usize, Some(4096usize)),
        (2, Some(4096)),
        (4, Some(4096)),
        (8, Some(4096)),
        (2, Some(256)),
        (2, Some(1024)),
        (2, None),
    ] {
        let cfg = TextAttackConfig {
            selection: FeatureSelection { tf_threshold: tf, max_features: max },
            folds: scale.folds,
            mlp_epochs: scale.mlp_epochs,
            seed,
            ..Default::default()
        };
        let o = evaluate_text(&ds, Discretizer::mined(), TextModel::Mlp, &cfg).outcome();
        t.row(vec![
            tf.to_string(),
            max.map_or("∞".into(), |m| m.to_string()),
            pct(o.ovr_accuracy),
            pct(o.accuracy),
        ]);
    }
    t.print();
    println!();
    println!("rare grams are mostly noise; pruning them shrinks the vectors drastically");
    println!("with little accuracy cost — the paper's justification for the threshold.");
}
