//! Regenerates paper Table I: the user-specific dataset distribution,
//! plus the 35% average route-overlap measurement (§III-A1, Fig. 3).

use bench::{start, TextTable};
use datasets::user_specific;

fn main() {
    let (seed, scale) = start("table1_user_dataset", "Table I (user-specific dataset)");
    let counts: Vec<_> = user_specific::TABLE_I
        .iter()
        .map(|&(c, n)| {
            let scaled =
                (((n as f64) * scale.dataset_fraction).round() as usize).max(scale.min_per_class);
            (c, scaled)
        })
        .collect();
    let ds = user_specific::build_with_counts(seed, &counts);

    let mut t = TextTable::new(&["region", "samples", "paper", "overlap ratio"]);
    for (label, name) in ds.label_names().iter().enumerate() {
        let measured = ds.class_counts()[label];
        let paper = user_specific::TABLE_I
            .iter()
            .find(|(c, _)| c.name() == name)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        t.row(vec![
            name.clone(),
            measured.to_string(),
            paper.to_string(),
            format!("{:.2}", ds.overlap_ratio(label as u32)),
        ]);
    }
    t.print();
    println!();
    println!(
        "mean overlap ratio (avg pairwise tight-rectangle IoU): {:.2} (paper: 0.35)",
        ds.mean_overlap_ratio()
    );
    println!(
        "labels were assigned by region clustering with threshold {}°, as in Fig. 3",
        user_specific::REGION_THRESHOLD_DEG
    );
}
