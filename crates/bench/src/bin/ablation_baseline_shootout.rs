//! Extension: all five classifiers on the TM-3 BoW features — the
//! paper's SVM/RFC/MLP plus the classical text baselines (multinomial
//! naive Bayes, k-NN). k-NN doubles as an overlap-leakage probe: its
//! accuracy jumps when near-duplicate routes are injected.

use bench::{pct, start, TextTable};
use classicml::{KnnClassifier, KnnMetric, NaiveBayes};
use datasets::split::{balanced_downsample, stratified_k_fold};
use elev_core::experiments::{inject_overlap, Corpora};
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use evalkit::evaluate_folds;
use textrep::{Discretizer, TextPipeline};

fn main() {
    let (seed, scale) = start(
        "ablation_baseline_shootout",
        "extension: five classifiers + overlap probe on TM-3",
    );
    let corpora = Corpora::generate(seed, &scale);
    let keep: Vec<u32> = corpora.city.classes_by_size().into_iter().take(5).collect();
    let filtered = corpora.city.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let ds = balanced_downsample(&filtered, s, seed);

    let cfg = TextAttackConfig {
        folds: scale.folds,
        mlp_epochs: scale.mlp_epochs,
        seed,
        ..Default::default()
    };

    // Shared preprocessing for the extra baselines.
    let run_extra = |ds: &datasets::Dataset, which: &str| -> f64 {
        let signals: Vec<Vec<f64>> =
            ds.samples().iter().map(|s| s.elevation.clone()).collect();
        let pipeline =
            TextPipeline::fit(Discretizer::mined(), cfg.ngram, cfg.selection, &signals);
        let features = pipeline.transform_all(&signals);
        let labels = ds.labels();
        let folds = stratified_k_fold(&labels, cfg.folds, seed);
        let summary = evaluate_folds(&labels, ds.n_classes(), &folds, |train, test| {
            let xt: Vec<Vec<f32>> = train.iter().map(|&i| features[i].clone()).collect();
            let yt: Vec<u32> = train.iter().map(|&i| labels[i]).collect();
            let xs: Vec<Vec<f32>> = test.iter().map(|&i| features[i].clone()).collect();
            match which {
                "knn" => KnnClassifier::fit(&xt, &yt, 3, KnnMetric::Manhattan).predict(&xs),
                _ => NaiveBayes::fit(&xt, &yt, 1.0).predict(&xs),
            }
        });
        summary.outcome().accuracy
    };

    let overlapped = inject_overlap(&ds, 0.35, seed.wrapping_add(5));

    let mut t = TextTable::new(&["classifier", "acc", "acc w/ 35% overlap", "Δ"]);
    for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
        let base = evaluate_text(&ds, Discretizer::mined(), model, &cfg).outcome().accuracy;
        let with = evaluate_text(&overlapped, Discretizer::mined(), model, &cfg)
            .outcome()
            .accuracy;
        t.row(vec![
            model.to_string(),
            pct(base),
            pct(with),
            format!("{:+.1}", (with - base) * 100.0),
        ]);
    }
    for which in ["knn", "nb"] {
        let base = run_extra(&ds, which);
        let with = run_extra(&overlapped, which);
        t.row(vec![
            which.to_uppercase(),
            pct(base),
            pct(with),
            format!("{:+.1}", (with - base) * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("observations: multinomial NB is a surprisingly strong BoW baseline here;");
    println!("margin models (SVM) benefit most from injected overlap (more support");
    println!("vectors along the decision boundary), while instance-based k-NN is");
    println!("sensitive to the replays' length truncation, which perturbs normalized");
    println!("BoW proportions more than it creates exact twins.");
}
