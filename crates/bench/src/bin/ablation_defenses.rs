//! Ablation/extension: the paper's future-work defenses vs the text
//! attack, swept over defense strength (TM-3 setting).

use bench::{pct, start, TextTable};
use datasets::split::balanced_downsample;
use elev_core::defense::Defense;
use elev_core::experiments::Corpora;
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use textrep::Discretizer;

fn main() {
    let (seed, scale) = start("ablation_defenses", "future work §VI: defenses vs the attack");
    let corpora = Corpora::generate(seed, &scale);
    let keep: Vec<u32> = corpora.city.classes_by_size().into_iter().take(5).collect();
    let filtered = corpora.city.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let ds = balanced_downsample(&filtered, s, seed);

    let cfg = TextAttackConfig {
        folds: scale.folds,
        mlp_epochs: scale.mlp_epochs,
        seed,
        ..Default::default()
    };
    let attack = |d: &datasets::Dataset| {
        evaluate_text(d, Discretizer::mined(), TextModel::Mlp, &cfg).outcome().accuracy
    };
    let baseline = attack(&ds);
    let chance = 1.0 / ds.n_classes() as f64;

    let mut t = TextTable::new(&["defense", "attack acc", "Δ vs baseline"]);
    t.row(vec!["none (raw profile)".into(), pct(baseline), "—".into()]);
    for defense in [
        Defense::Coarsen { step_m: 1.0 },
        Defense::Coarsen { step_m: 10.0 },
        Defense::Coarsen { step_m: 50.0 },
        Defense::LaplaceNoise { scale_m: 1.0, seed },
        Defense::LaplaceNoise { scale_m: 5.0, seed },
        Defense::LaplaceNoise { scale_m: 25.0, seed },
        Defense::SummaryOnly { bins: 16 },
        Defense::SummaryOnly { bins: 4 },
        Defense::RelativeProfile,
    ] {
        let acc = attack(&defense.apply_to_dataset(&ds));
        t.row(vec![
            defense.to_string(),
            pct(acc),
            format!("{:+.1}pp", (acc - baseline) * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("chance level: {}", pct(chance));
    println!("coarsening barely helps (cities differ by tens of metres, not millimetres);");
    println!("only statistics-only sharing approaches chance — supporting the paper's");
    println!("proposed defense direction while quantifying how strong it must be.");
}
