//! Scale sweep: re-identification accuracy vs candidate-population
//! size over the sharded feature store (not a paper artifact — this
//! probes how the paper's attacks degrade toward fitness-app scale).
//!
//! Environment knobs on top of the usual `ELEV_*` set:
//!
//! - `ELEV_POP_SIZE` — total athletes (default 10 000);
//! - `ELEV_SHARD_SIZE` — athletes per shard (default 1024);
//! - `ELEV_STORE_DIR` — feature-store directory (default
//!   `target/featstore`; reused when the config fingerprint matches,
//!   grown in place when only the athlete count increased);
//! - `ELEV_ANN` — set to `1` to match probes through the deterministic
//!   IVF index (sublinear candidate scan + exact rescoring) instead of
//!   the exact brute-force scan, with recall@3 accounting;
//! - `ELEV_ANN_CENTROIDS` / `ELEV_ANN_NPROBE` — IVF codebook size
//!   (default 64) and posting lists scanned per probe (default 8).
//!
//! Flags:
//!
//! - `--digests` — regenerate every population shard, print one
//!   `shard <index> <fingerprint>` line per shard (always sorted by
//!   index, regardless of compute order), and exit. `scripts/verify.sh`
//!   diffs this output across thread counts and regeneration orders.
//! - `--reverse` — with `--digests`, regenerate the shards in reverse
//!   order (the printed lines must not change).

use bench::{pct, start, TextTable};
use elev_core::scale::{scale_sweep, shard_fingerprints, ScaleConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let digests = args.iter().any(|a| a == "--digests");
    let reverse = args.iter().any(|a| a == "--reverse");
    let exec = exec::Executor::from_env();

    if digests {
        // No banner: the output is diffed byte-for-byte by verify.sh.
        let seed = bench::seed_from_env();
        let cfg = ScaleConfig::from_env(seed);
        let pop = &cfg.population;
        let fps: Vec<u64> = if reverse {
            let terrain = pop.terrain();
            let mut pairs: Vec<(usize, u64)> = (0..pop.n_shards())
                .rev()
                .map(|s| (s, pop.generate_shard(&terrain, s).fingerprint()))
                .collect();
            pairs.sort_by_key(|&(s, _)| s);
            pairs.into_iter().map(|(_, f)| f).collect()
        } else {
            shard_fingerprints(pop, &exec)
        };
        for (s, f) in fps.iter().enumerate() {
            println!("shard {s:05} {f:016x}");
        }
        return;
    }

    let (seed, _) = start("scale_sweep", "accuracy vs candidate-population size (scaling)");
    let cfg = ScaleConfig::from_env(seed);
    println!(
        "population {} athletes over {} shards of {} (seed tree root {seed}), store {}",
        cfg.population.athletes,
        cfg.population.n_shards(),
        cfg.population.shard_size,
        cfg.store_dir.display()
    );
    let t0 = Instant::now();
    let report = scale_sweep(&cfg, &exec).expect("scale sweep");
    println!(
        "store: {} rows x {} features; {} stratified probes",
        report.store_rows, report.n_cols, report.probes
    );
    println!();

    let mut table =
        TextTable::new(&["athletes", "tracks", "TM-1 top-1", "TM-1 top-3", "TM-3 top-1"]);
    for p in &report.points {
        table.row(vec![
            p.athletes.to_string(),
            p.tracks.to_string(),
            pct(p.tm1_top1),
            pct(p.tm1_top3),
            pct(p.tm3_top1),
        ]);
    }
    println!("re-identification accuracy vs candidate-pool size:");
    table.print();
    println!();

    if let Some(ann) = &report.ann {
        println!(
            "IVF matching: {} centroids, {} probed lists/query; rescored {} of {} \
             candidate pairs ({})",
            ann.centroids,
            ann.nprobe,
            ann.rows_scanned,
            ann.rows_total,
            pct(ann.rows_scanned as f64 / ann.rows_total.max(1) as f64)
        );
        let recall: Vec<String> = report
            .points
            .iter()
            .zip(&ann.recall3)
            .map(|(p, r)| format!("{}: {}", p.athletes, pct(*r)))
            .collect();
        println!("recall@3 vs exact scan by pool size: {}", recall.join(", "));
        println!();
    }

    let json = report.to_json();
    println!("scale-report-json:");
    println!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/scale_population.json");
    std::fs::write(path, format!("{json}\n")).expect("write scale_population.json");
    println!();
    println!("wrote {path}");
    println!("total wall time {:?}", t0.elapsed());
}
