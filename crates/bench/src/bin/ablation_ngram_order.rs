//! Ablation: the n-gram order (the paper fixes n = 8 without sweeping
//! it). How much does the order matter for the TM-3 attack?

use bench::{pct, start, TextTable};
use datasets::split::balanced_downsample;
use elev_core::experiments::Corpora;
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use textrep::Discretizer;

fn main() {
    let (seed, scale) = start("ablation_ngram_order", "design choice: n-gram order (paper: n=8)");
    let corpora = Corpora::generate(seed, &scale);
    let keep: Vec<u32> = corpora.city.classes_by_size().into_iter().take(5).collect();
    let filtered = corpora.city.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let ds = balanced_downsample(&filtered, s, seed);

    let mut t = TextTable::new(&["n", "MLP A", "MLP acc", "SVM A", "SVM acc"]);
    for n in [1usize, 2, 4, 8, 12] {
        let cfg = TextAttackConfig {
            ngram: n,
            folds: scale.folds,
            mlp_epochs: scale.mlp_epochs,
            seed,
            ..Default::default()
        };
        let mlp = evaluate_text(&ds, Discretizer::mined(), TextModel::Mlp, &cfg).outcome();
        let svm = evaluate_text(&ds, Discretizer::mined(), TextModel::Svm, &cfg).outcome();
        t.row(vec![
            n.to_string(),
            pct(mlp.ovr_accuracy),
            pct(mlp.accuracy),
            pct(svm.ovr_accuracy),
            pct(svm.accuracy),
        ]);
    }
    t.print();
    println!();
    println!("takeaway: 1-grams (elevation-value histograms) already carry most of the");
    println!("city signal; higher orders add sequence information with diminishing");
    println!("returns — consistent with the paper's unexplained choice of n=8.");
}
