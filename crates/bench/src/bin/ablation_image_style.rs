//! Ablation: the image-representation design choices the paper says it
//! examined but "omit(ted) due to lack of space" — line colouring and
//! per-signal vs global y-scaling.

use bench::{pct, start, TextTable};
use elev_core::experiments::Corpora;
use elev_core::image::{evaluate_image, ImageAttackConfig, ImageMethod};
use imgrep::ImageConfig;

fn main() {
    let (seed, scale) = start(
        "ablation_image_style",
        "design choices: line colour + y-scaling (paper §III-B2)",
    );
    let corpora = Corpora::generate(seed, &scale);

    let variants = [
        ("colored + per-signal scale (paper)", true, true),
        ("monochrome + per-signal scale", false, true),
        ("colored + global scale", true, false),
        ("monochrome + global scale", false, false),
    ];
    let mut t = TextTable::new(&["variant", "TM-3 A", "TM-3 acc"]);
    for (name, colored, per_signal) in variants {
        let cfg = ImageAttackConfig {
            image: ImageConfig { colored, per_signal_scale: per_signal, ..Default::default() },
            epochs: scale.cnn_epochs,
            seed,
            ..Default::default()
        };
        let out = evaluate_image(&corpora.city, ImageMethod::WeightedLoss, &cfg);
        t.row(vec![
            name.to_owned(),
            pct(out.confusion.ovr_accuracy()),
            pct(out.confusion.accuracy()),
        ]);
    }
    t.print();
    println!();
    println!("the paper's combination packs both signals into one image: colour encodes");
    println!("the absolute band (lost under per-signal scaling), while per-signal");
    println!("scaling keeps small fluctuations visible (lost under a global scale).");
    println!("monochrome + per-signal drops the absolute band entirely — the worst of");
    println!("the four, which is why the paper chose coloured lines.");
}
