//! Runs every experiment in sequence, printing a compact summary —
//! including the paper's headline accuracy range (§I: 59.59%–95.83%).

use bench::{pct, start, TextTable};
use elev_core::experiments::*;
use elev_core::text::TextModel;
use std::time::Instant;

fn main() {
    let (seed, scale) = start("run_all", "all tables and figures (summary)");
    let t0 = Instant::now();
    let corpora = Corpora::generate(seed, &scale);
    println!(
        "corpora: user {} / city {} / boroughs {} samples ({:?})",
        corpora.user.len(),
        corpora.city.len(),
        corpora.boroughs.values().map(|d| d.len()).sum::<usize>(),
        t0.elapsed()
    );
    println!("user-specific overlap ratio: {:.2} (paper 0.35)", corpora.user.mean_overlap_ratio());
    println!();

    let mut lows: Vec<f64> = Vec::new();
    let mut highs: Vec<f64> = Vec::new();

    // TM-1 (Table IV).
    let t = Instant::now();
    let tm1 = table4_tm1(&corpora.user, &scale, seed);
    let tm1_best = tm1.iter().map(|r| r.outcome.accuracy).fold(0.0f64, f64::max);
    let tm1_worst = tm1.iter().map(|r| r.outcome.accuracy).fold(1.0f64, f64::min);
    println!("TM-1 text accuracy: {}–{} (paper 86.8–98.5) [{:?}]", pct(tm1_worst), pct(tm1_best), t.elapsed());
    lows.push(tm1_worst);
    highs.push(tm1_best);

    // TM-2 (Fig. 8).
    let t = Instant::now();
    let tm2 = fig8_tm2(&corpora.boroughs, &scale, seed);
    let mut tm2_table = TextTable::new(&["city", "best model", "A"]);
    for &city in corpora.boroughs.keys() {
        let best = tm2
            .iter()
            .filter(|(c, _, _)| *c == city)
            .max_by(|a, b| a.2.ovr_accuracy.total_cmp(&b.2.ovr_accuracy))
            .expect("three models per city");
        tm2_table.row(vec![
            city.abbrev().to_owned(),
            best.1.to_string(),
            pct(best.2.ovr_accuracy),
        ]);
        lows.push(best.2.ovr_accuracy);
        highs.push(best.2.ovr_accuracy);
    }
    println!("TM-2 per-city best (paper: all above 55%) [{:?}]:", t.elapsed());
    tm2_table.print();

    // TM-3 (Table V).
    let t = Instant::now();
    let tm3 = table5_tm3(&corpora.city, &scale, seed);
    let best10 = tm3
        .iter()
        .filter(|r| r.classes == 10)
        .map(|r| r.outcome.ovr_accuracy)
        .fold(0.0f64, f64::max);
    let mlp3 = tm3
        .iter()
        .find(|r| r.classes == 3 && r.model == TextModel::Mlp)
        .map(|r| r.outcome.ovr_accuracy)
        .unwrap_or(0.0);
    println!(
        "TM-3: best A at C=10 {} (paper 93.9); MLP A at C=3 {} (paper 80.9) [{:?}]",
        pct(best10),
        pct(mlp3),
        t.elapsed()
    );
    lows.push(mlp3);
    highs.push(best10);

    // Overlap simulations (Fig. 9 / Table VI).
    let t = Instant::now();
    let injected = table6_tm3_overlap(&corpora.city, &scale, seed);
    let gains = injected
        .iter()
        .filter(|r| {
            tm3.iter()
                .find(|o| o.classes == r.classes && o.model == r.model)
                .is_some_and(|o| r.outcome.ovr_accuracy >= o.outcome.ovr_accuracy - 0.005)
        })
        .count();
    println!(
        "Table VI: overlap injection holds or improves {}/{} settings (paper: all) [{:?}]",
        gains,
        injected.len(),
        t.elapsed()
    );

    // Robustness: accuracy under fault injection + quarantine ingestion.
    let t = Instant::now();
    let fault_plan = faultsim::FaultPlan::from_env();
    let rob = elev_core::robustness::robustness_sweep(
        &corpora,
        &scale,
        seed,
        fault_plan.seed,
        &elev_core::robustness::DEFAULT_RATES,
    );
    let mut rob_table = TextTable::new(&["rate", "TM-1 A", "TM-3 A", "repaired", "quar"]);
    for &rate in &elev_core::robustness::DEFAULT_RATES {
        let at = |setting: &str| rob.iter().find(|p| p.rate == rate && p.setting == setting);
        let (tm1, tm3) = (at("TM-1").expect("TM-1 point"), at("TM-3").expect("TM-3 point"));
        rob_table.row(vec![
            format!("{rate:.2}"),
            pct(tm1.outcome.ovr_accuracy),
            pct(tm3.outcome.ovr_accuracy),
            (tm1.report.repaired() + tm3.report.repaired()).to_string(),
            (tm1.report.quarantined() + tm3.report.quarantined()).to_string(),
        ]);
    }
    println!();
    println!("robustness: accuracy vs corruption rate (quarantine ingestion) [{:?}]:", t.elapsed());
    rob_table.print();

    // Scaling: re-identification accuracy vs candidate-population size
    // over the sharded feature store (quick slice; scale_sweep runs the
    // full ladder and writes results/scale_population.json).
    let t = Instant::now();
    let pop_size = if scale == ExperimentScale::full() { 10_000 } else { 600 };
    let mut scale_cfg = elev_core::scale::ScaleConfig::new(pop_size, seed);
    scale_cfg.store_dir = std::path::PathBuf::from(format!("target/featstore_runall_{pop_size}"));
    let exec = exec::Executor::from_env();
    let scaling = elev_core::scale::scale_sweep(&scale_cfg, &exec).expect("scale sweep");
    let mut scale_table = TextTable::new(&["athletes", "TM-1 top-1", "TM-1 top-3", "TM-3 top-1"]);
    for p in &scaling.points {
        scale_table.row(vec![
            p.athletes.to_string(),
            pct(p.tm1_top1),
            pct(p.tm1_top3),
            pct(p.tm3_top1),
        ]);
    }
    println!();
    println!(
        "scaling: re-identification vs candidate-pool size ({} probes, {} stored rows) [{:?}]:",
        scaling.probes,
        scaling.store_rows,
        t.elapsed()
    );
    scale_table.print();

    let lo = lows.iter().copied().fold(1.0f64, f64::min);
    let hi = highs.iter().copied().fold(0.0f64, f64::max);
    println!();
    let phases = elev_core::timing::snapshot();
    println!(
        "phase time (summed across workers): featurize {:?}, fit {:?} (cnn-train {:?}), predict {:?}",
        phases.featurize, phases.fit, phases.cnn_train, phases.predict
    );
    let cache = elev_core::featcache::stats();
    println!(
        "featurization cache: pipeline {}/{} hits, bow {}/{} hits, raster {}/{} hits",
        cache.pipeline_hits,
        cache.pipeline_hits + cache.pipeline_misses,
        cache.bow_hits,
        cache.bow_hits + cache.bow_misses,
        cache.raster_hits,
        cache.raster_hits + cache.raster_misses
    );
    if cache.dense_feature_bytes() > 0 {
        println!(
            "feature matrix: {:.2}% nonzero; {} sparse vs {} dense ({:.0}x smaller)",
            cache.bow_density() * 100.0,
            fmt_bytes(cache.sparse_feature_bytes()),
            fmt_bytes(cache.dense_feature_bytes()),
            cache.dense_feature_bytes() as f64 / cache.sparse_feature_bytes().max(1) as f64
        );
    }
    if let Some(line) = kernel_speedups() {
        println!("kernel speedups vs dense/naive (BENCH_kernels.json): {line}");
    }
    println!();
    println!(
        "headline: prediction success ranges {}%–{}% across threat models \
         (paper: 59.59%–95.83%)",
        pct(lo).trim_end_matches(".0"),
        pct(hi).trim_end_matches(".0")
    );
    println!("total wall time {:?}", t0.elapsed());
    println!();
    println!("run the per-table binaries (table4_tm1_text, table7_image_methods, …) for");
    println!("the full layouts, and set ELEV_SCALE=full for paper-scale sweeps.");
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Per-kernel speedups from the committed bench trajectory, if a
/// parseable `BENCH_kernels.json` sits at the repository root (run
/// `cargo bench -p bench --bench kernels` to refresh it).
fn kernel_speedups() -> Option<String> {
    #[derive(serde::Deserialize)]
    struct Entry {
        name: String,
        speedup: Option<f64>,
    }
    #[derive(serde::Deserialize)]
    struct Report {
        benches: Vec<Entry>,
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let report: Report = serde_json::from_str(&std::fs::read_to_string(path).ok()?).ok()?;
    let lines: Vec<String> = report
        .benches
        .iter()
        .filter_map(|b| b.speedup.map(|s| format!("{} {s:.2}x", b.name)))
        .collect();
    if lines.is_empty() {
        None
    } else {
        Some(lines.join(", "))
    }
}
