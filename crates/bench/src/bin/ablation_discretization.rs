//! Ablation: discretization precision (paper §III-B1 — `⌊e⌋` for the
//! dense user-specific data, `⌊e·10³⌋/10³` for the sparse mined data).

use bench::{pct, start, TextTable};
use datasets::split::balanced_downsample;
use elev_core::experiments::Corpora;
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use textrep::Discretizer;

fn main() {
    let (seed, scale) =
        start("ablation_discretization", "design choice: discretization precision");
    let corpora = Corpora::generate(seed, &scale);
    let keep: Vec<u32> = corpora.city.classes_by_size().into_iter().take(5).collect();
    let filtered = corpora.city.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let mined = balanced_downsample(&filtered, s, seed);

    let variants = [
        ("floor (1 m)", Discretizer::Floor),
        ("1 decimal", Discretizer::FixedPrecision { decimals: 1 }),
        ("2 decimals", Discretizer::FixedPrecision { decimals: 2 }),
        ("3 decimals (paper)", Discretizer::FixedPrecision { decimals: 3 }),
    ];

    let cfg = TextAttackConfig {
        folds: scale.folds,
        mlp_epochs: scale.mlp_epochs,
        seed,
        ..Default::default()
    };
    let mut t = TextTable::new(&["discretizer", "mined A", "mined acc", "user acc"]);
    for (name, d) in variants {
        let mined_o = evaluate_text(&mined, d, TextModel::Mlp, &cfg).outcome();
        let user_o = evaluate_text(&corpora.user, d, TextModel::Mlp, &cfg).outcome();
        t.row(vec![
            name.to_owned(),
            pct(mined_o.ovr_accuracy),
            pct(mined_o.accuracy),
            pct(user_o.accuracy),
        ]);
    }
    t.print();
    println!();
    println!("the paper's rationale: dense recordings tolerate coarse floors, while the");
    println!("sparse mined profiles would lose discriminative micro-relief — finer");
    println!("precision should help (or at least not hurt) the mined column.");
}
