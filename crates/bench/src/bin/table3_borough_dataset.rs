//! Regenerates paper Table III: the borough-level mined dataset
//! distribution for the six TM-2 cities.

use bench::{start, TextTable};
use datasets::borough_level;
use terrain::CityId;

fn main() {
    let (seed, scale) = start("table3_borough_dataset", "Table III (borough-level mining)");
    let mut t = TextTable::new(&["city", "borough", "samples", "paper"]);
    let mut total = 0usize;
    for city in CityId::BOROUGH_LEVEL {
        let counts: Vec<_> = borough_level::TABLE_III
            .iter()
            .filter(|(b, _)| b.city() == city)
            .map(|&(b, n)| {
                let scaled = (((n as f64) * scale.dataset_fraction).round() as usize)
                    .max(scale.min_per_class);
                (b, scaled)
            })
            .collect();
        let ds = borough_level::build_with_counts(seed, &counts);
        total += ds.len();
        for (label, name) in ds.label_names().iter().enumerate() {
            let paper = counts
                .iter()
                .find(|(b, _)| b.name() == name)
                .map(|(b, _)| {
                    borough_level::TABLE_III
                        .iter()
                        .find(|(bb, _)| bb == b)
                        .map(|(_, n)| *n)
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            t.row(vec![
                city.abbrev().to_owned(),
                name.clone(),
                ds.class_counts()[label].to_string(),
                paper.to_string(),
            ]);
        }
    }
    t.print();
    println!();
    println!("total {total} borough-labelled samples across 6 cities / 22 boroughs");
}
