//! Regenerates paper Fig. 8: TM-2 borough classification per city —
//! accuracy, precision, recall, F1 for SVM/RFC/MLP on each of the six
//! borough-level datasets.

use bench::{pct, start, TextTable};
use elev_core::experiments::{fig8_tm2, Corpora};

fn main() {
    let (seed, scale) = start("fig8_tm2_text", "Fig. 8 (TM-2, text representation)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = fig8_tm2(&corpora.boroughs, &scale, seed);

    let mut t = TextTable::new(&["city", "model", "A", "P", "R", "F1"]);
    for (city, model, o) in &rows {
        t.row(vec![
            city.abbrev().to_owned(),
            model.to_string(),
            pct(o.ovr_accuracy),
            pct(o.precision),
            pct(o.recall),
            pct(o.f1),
        ]);
    }
    t.print();
    println!();
    println!("paper shape: all TM-2 accuracies exceed 55% but precision/recall/F1 vary");
    println!("widely per city — borough elevations within a city are weakly distinctive,");
    println!("which is why TM-2 trails TM-1 and TM-3 (paper §IV-A).");
}
