//! Regenerates paper Table VII: maximum achieved accuracy across
//! methods — text (DS) vs the Fig. 7 CNN with unweighted loss (biased),
//! weighted loss, and fine-tuning, for TM-1, the six TM-2 cities, and
//! TM-3.

use bench::{pct, start, TextTable};
use elev_core::experiments::{table7_methods, Corpora};

/// Paper Table VII: (setting, text DS, UWL, WL, FT).
const PAPER: [(&str, f64, f64, f64, f64); 8] = [
    ("TM-1", 95.83, 96.98, 95.23, 87.93),
    ("TM-2: LA", 65.13, 68.85, 68.39, 63.63),
    ("TM-2: MIA", 68.65, 88.96, 86.80, 62.50),
    ("TM-2: NJ", 63.52, 93.45, 79.42, 57.14),
    ("TM-2: NYC", 78.85, 74.20, 79.37, 72.79),
    ("TM-2: SF", 64.52, 67.20, 78.70, 65.38),
    ("TM-2: WDC", 60.79, 62.79, 70.28, 71.50),
    ("TM-3", 93.90, 92.51, 92.82, 89.00),
];

fn main() {
    let (seed, scale) = start("table7_image_methods", "Table VII (method comparison)");
    let corpora = Corpora::generate(seed, &scale);
    let rows = table7_methods(&corpora, &scale, seed);

    let mut t = TextTable::new(&[
        "setting", "DS", "UWL*", "WL", "FT", "paper DS", "paper UWL*", "paper WL", "paper FT",
    ]);
    for r in &rows {
        let paper = PAPER.iter().find(|(s, ..)| *s == r.setting);
        let mut cells = vec![
            r.setting.clone(),
            pct(r.text_ds),
            pct(r.uwl),
            pct(r.wl),
            pct(r.ft),
        ];
        match paper {
            Some((_, ds, uwl, wl, ft)) => {
                cells.push(format!("{ds:.1}"));
                cells.push(format!("{uwl:.1}"));
                cells.push(format!("{wl:.1}"));
                cells.push(format!("{ft:.1}"));
            }
            None => cells.extend(std::iter::repeat_n("-".to_owned(), 4)),
        }
        t.row(cells);
    }
    t.print();
    println!();
    println!("* UWL (unweighted loss on unbalanced data) is biased toward majority classes");
    println!("  and excluded from the paper's max-accuracy comparison.");
    let wl_wins = rows
        .iter()
        .filter(|r| r.setting.starts_with("TM-2") && r.wl >= r.ft)
        .count();
    let tm2 = rows.iter().filter(|r| r.setting.starts_with("TM-2")).count();
    println!("WL beats FT on {wl_wins}/{tm2} TM-2 cities (paper: WL wins except WDC).");
}
