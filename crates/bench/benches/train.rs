//! Training-path benchmarks for the deterministic data-parallel CNN
//! step and the zero-alloc training arenas.
//!
//! Three before/after pairs, written to `BENCH_train.json` at the
//! repository root (same schema as `BENCH_kernels.json`):
//!
//! 1. the single mini-batch step, serial vs 4-lane staged — trained
//!    weights are bit-identical either way (asserted here), so the
//!    pair measures pure scheduling;
//! 2. the same step cold vs warm — the cold side drops layer scratch
//!    and the training arena every call (the pre-arena behavior), and
//!    a counting allocator reports allocations per step for both;
//! 3. end-to-end Table VII (TM-1, weighted loss) at quick scale,
//!    serial vs budget-sized lanes, with identical confusions asserted.
//!
//! Lane speedup tracks the host's available parallelism: on the
//! single-core reference container the lanes serialize onto one worker
//! and the pair reads ~1.0x; each note records the observed core count
//! so the numbers stay interpretable across machines. Run with
//! `cargo bench -p bench --bench train`; `BENCH_QUICK=1` for the smoke.

use elev_core::experiments::{Corpora, ExperimentScale};
use elev_core::image::{evaluate_image, ImageAttackConfig, ImageMethod};
use neuralnet::{models, train, train_in_arena, Adam, Layer, TrainArena, TrainConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tensorlite::Tensor;

/// `System`, plus a process-wide allocation counter so the bench can
/// report allocations-per-step for the cold and warm training paths.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// (allocation count, bytes requested) of one run of `f` (includes
/// worker threads).
fn count_allocs(mut f: impl FnMut()) -> (u64, u64) {
    let count0 = ALLOCATIONS.load(Ordering::Relaxed);
    let bytes0 = ALLOCATED_BYTES.load(Ordering::Relaxed);
    f();
    (
        ALLOCATIONS.load(Ordering::Relaxed) - count0,
        ALLOCATED_BYTES.load(Ordering::Relaxed) - bytes0,
    )
}

/// One before/after measurement (times in seconds, medians). Same
/// shape as the `kernels` suite so downstream tooling parses both.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct TrainBench {
    name: String,
    baseline_s: Option<f64>,
    optimized_s: f64,
    speedup: Option<f64>,
    note: String,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    suite: String,
    quick: bool,
    samples: usize,
    benches: Vec<TrainBench>,
}

/// Median wall-clock seconds of `f` over `samples` runs (one warm-up).
fn median_s<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

fn entry(
    name: &str,
    samples: usize,
    note: String,
    mut baseline: impl FnMut(),
    mut optimized: impl FnMut(),
) -> TrainBench {
    let baseline_s = median_s(samples, &mut baseline);
    let optimized_s = median_s(samples, &mut optimized);
    let speedup = baseline_s / optimized_s;
    println!(
        "  {name}: baseline {:.3} ms, optimized {:.3} ms ({speedup:.2}x)",
        baseline_s * 1e3,
        optimized_s * 1e3
    );
    TrainBench {
        name: name.to_owned(),
        baseline_s: Some(baseline_s),
        optimized_s,
        speedup: Some(speedup),
        note,
    }
}

fn deterministic_tensor(shape: &[usize], salt: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// `to_bits` of every trained parameter, for bit-identity assertions.
fn weight_bits(net: &mut neuralnet::Sequential) -> Vec<u32> {
    let mut bits = Vec::new();
    net.visit_params(&mut |p, _| bits.extend(p.data().iter().map(|v| v.to_bits())));
    bits
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let samples = if quick { 3 } else { 9 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut benches = Vec::new();
    println!("train suite (quick={quick}, {samples} samples per bench, {cores} cores)");

    // The staged path reads the two-level budget from the environment;
    // pin it so the measurement does not depend on the caller's shell.
    std::env::set_var("ELEV_INNER_THREADS", "4");

    // --- One CNN mini-batch epoch: serial vs 4-lane staged gradients.
    let batch = 32;
    let x = deterministic_tensor(&[batch * 2, 3, 32, 32], 7);
    let y: Vec<u32> = (0..batch * 2).map(|i| (i % 4) as u32).collect();
    let serial_cfg = TrainConfig {
        epochs: 1,
        batch_size: batch,
        shards: Some(1),
        ..Default::default()
    };
    let lane_cfg = TrainConfig { shards: Some(4), ..serial_cfg.clone() };

    // Bit-identity first: the bench's premise is that the two sides
    // compute the same weights, so assert it before timing them.
    let mut check_serial = models::paper_cnn(4, 1);
    let mut check_lanes = models::paper_cnn(4, 1);
    train(&mut check_serial, &x, &y, &serial_cfg);
    train(&mut check_lanes, &x, &y, &lane_cfg);
    assert_eq!(
        weight_bits(&mut check_serial),
        weight_bits(&mut check_lanes),
        "serial and 4-lane training must produce bit-identical weights"
    );

    let mut serial_net = models::paper_cnn(4, 1);
    let mut serial_adam = Adam::new(serial_cfg.lr);
    let mut serial_arena = TrainArena::new();
    let mut lane_net = models::paper_cnn(4, 1);
    let mut lane_adam = Adam::new(lane_cfg.lr);
    let mut lane_arena = TrainArena::new();
    benches.push(entry(
        "cnn_epoch_64imgs_serial_vs_4lane",
        samples,
        format!(
            "two batch-32 steps on the paper CNN; 4 gradient lanes vs \
             one, bit-identical weights asserted; lane speedup tracks \
             core count ({cores} available here)"
        ),
        || {
            black_box(train_in_arena(
                &mut serial_net,
                &x,
                &y,
                &serial_cfg,
                &mut serial_adam,
                &mut serial_arena,
            ));
        },
        || {
            black_box(train_in_arena(
                &mut lane_net,
                &x,
                &y,
                &lane_cfg,
                &mut lane_adam,
                &mut lane_arena,
            ));
        },
    ));

    // --- The same serial epoch, cold vs warm arenas, with alloc counts.
    let mut cold_net = models::paper_cnn(4, 1);
    let mut warm_net = models::paper_cnn(4, 1);
    let mut warm_adam = Adam::new(serial_cfg.lr);
    let mut warm_arena = TrainArena::new();
    // Warm both paths, then count one representative call each.
    cold_net.reset_scratch();
    train(&mut cold_net, &x, &y, &serial_cfg);
    train_in_arena(&mut warm_net, &x, &y, &serial_cfg, &mut warm_adam, &mut warm_arena);
    let (cold_allocs, cold_bytes) = count_allocs(|| {
        cold_net.reset_scratch();
        black_box(train(&mut cold_net, &x, &y, &serial_cfg));
    });
    let (warm_allocs, warm_bytes) = count_allocs(|| {
        black_box(train_in_arena(
            &mut warm_net,
            &x,
            &y,
            &serial_cfg,
            &mut warm_adam,
            &mut warm_arena,
        ));
    });
    benches.push(entry(
        "cnn_epoch_64imgs_cold_vs_warm_arena",
        samples,
        format!(
            "cold drops layer scratch + arena every call (pre-arena \
             behavior): {cold_allocs} allocations / {:.2} MiB per \
             epoch vs {warm_allocs} / {:.2} MiB with persistent arenas",
            cold_bytes as f64 / (1 << 20) as f64,
            warm_bytes as f64 / (1 << 20) as f64
        ),
        || {
            cold_net.reset_scratch();
            black_box(train(&mut cold_net, &x, &y, &serial_cfg));
        },
        || {
            black_box(train_in_arena(
                &mut warm_net,
                &x,
                &y,
                &serial_cfg,
                &mut warm_adam,
                &mut warm_arena,
            ));
        },
    ));

    // --- End-to-end Table VII delta: TM-1 weighted-loss CNN at quick
    // scale, serial vs budget-sized lanes. Rasters are memoized
    // process-wide, so after the warm-up both sides time train+predict.
    let scale = ExperimentScale::quick();
    let corpora = Corpora::generate(7, &scale);
    let serial_img = ImageAttackConfig {
        epochs: scale.cnn_epochs,
        seed: 7,
        shards: Some(1),
        ..Default::default()
    };
    let lanes_img = ImageAttackConfig { shards: None, ..serial_img.clone() };
    let out_serial = evaluate_image(&corpora.user, ImageMethod::WeightedLoss, &serial_img);
    let out_lanes = evaluate_image(&corpora.user, ImageMethod::WeightedLoss, &lanes_img);
    assert_eq!(
        out_serial, out_lanes,
        "table7 outcome must not depend on the lane count"
    );
    let e2e_samples = if quick { 1 } else { 3 };
    benches.push(entry(
        "table7_tm1_wl_quick_serial_vs_lanes",
        e2e_samples,
        format!(
            "end-to-end TM-1 weighted-loss evaluation at quick scale \
             ({} samples); identical confusion matrices asserted; \
             {cores} cores available",
            corpora.user.len()
        ),
        || {
            black_box(evaluate_image(&corpora.user, ImageMethod::WeightedLoss, &serial_img));
        },
        || {
            black_box(evaluate_image(&corpora.user, ImageMethod::WeightedLoss, &lanes_img));
        },
    ));

    std::env::remove_var("ELEV_INNER_THREADS");

    let report = BenchReport {
        suite: "train".to_owned(),
        quick,
        samples,
        benches,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Round-trip before writing so a malformed report can never land.
    let parsed: BenchReport = serde_json::from_str(&json).expect("report parses back");
    assert_eq!(parsed.benches.len(), report.benches.len());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(path, &json).expect("write BENCH_train.json");
    println!("wrote {path}");
}
