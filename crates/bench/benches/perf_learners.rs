//! Criterion micro-benchmarks for the learners: per-fold training costs
//! that dominate the table-regeneration wall time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use classicml::{ForestConfig, RandomForest, SvmClassifier, SvmConfig};
use neuralnet::{models, train, Layer, TrainConfig};
use tensorlite::Tensor;

fn synthetic_rows(n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
    let x: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (((i * 31 + j * 17) % 97) as f32 / 97.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    let y: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
    (x, y)
}

fn bench_classicml(c: &mut Criterion) {
    let (x, y) = synthetic_rows(200, 512);
    let mut g = c.benchmark_group("classicml");
    g.sample_size(10);
    g.bench_function("svm_fit_200x512_4class", |b| {
        b.iter(|| {
            SvmClassifier::fit(
                black_box(&x),
                black_box(&y),
                &SvmConfig { epochs: 10, ..Default::default() },
                1,
            )
        })
    });
    g.bench_function("forest20_fit_200x512", |b| {
        b.iter(|| {
            RandomForest::fit(
                black_box(&x),
                black_box(&y),
                &ForestConfig { n_trees: 20, ..Default::default() },
                1,
            )
        })
    });
    let svm = SvmClassifier::fit(&x, &y, &SvmConfig::default(), 1);
    g.bench_function("svm_predict_200", |b| b.iter(|| svm.predict(black_box(&x))));
    g.finish();
}

fn bench_neuralnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("neuralnet");
    g.sample_size(10);

    let (rows, y) = synthetic_rows(256, 1024);
    let x = Tensor::from_rows(&rows);
    g.bench_function("mlp_epoch_256x1024", |b| {
        let mut net = models::mlp(1024, 100, 4, 1);
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        b.iter(|| train(&mut net, black_box(&x), black_box(&y), &cfg))
    });

    let n = 64;
    let img: Vec<f32> = (0..n * 3 * 32 * 32).map(|i| ((i * 2654435761usize) % 255) as f32 / 255.0).collect();
    let xi = Tensor::from_vec(img, &[n, 3, 32, 32]);
    let yi: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
    g.bench_function("cnn_epoch_64imgs", |b| {
        let mut net = models::paper_cnn(4, 1);
        let cfg = TrainConfig { epochs: 1, batch_size: 32, ..Default::default() };
        b.iter(|| train(&mut net, black_box(&xi), black_box(&yi), &cfg))
    });
    g.bench_function("cnn_forward_64imgs", |b| {
        let mut net = models::paper_cnn(4, 1);
        b.iter(|| net.forward(black_box(&xi), false))
    });
    g.finish();
}

criterion_group!(benches, bench_classicml, bench_neuralnet);
criterion_main!(benches);
