//! Serving-path benchmarks for the deterministic inference server.
//!
//! Written to `BENCH_serve.json` at the repository root (same schema
//! as `BENCH_train.json` / `BENCH_kernels.json`):
//!
//! 1. the steady-state classify path (cached BoW → SVM + forest + MLP
//!    for both tasks), with the zero-allocation claim asserted under a
//!    counting allocator before the server ever starts;
//! 2. the offline `report_json` path (ingest → featurize → classify →
//!    render) as the in-process reference point;
//! 3. request latency through the real server at 1, 4 and 16
//!    concurrent keep-alive clients — seeded request streams, p50/p99
//!    latency and aggregate QPS, with every served body asserted equal
//!    to the offline report.
//!
//! Run with `cargo bench -p bench --bench serve`; `BENCH_QUICK=1` for
//! the smoke. Absolute numbers track the host; the note on each entry
//! records the request volume and core count so they stay
//! interpretable across machines.

use elev_core::ingest::{ingest_one, IngestConfig, TrackSource};
use routegen::AthleteSimulator;
use serve::client::HttpClient;
use serve::{BundleConfig, InferenceArena, ModelBundle, ServeConfig, Server};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use terrain::{CityId, SyntheticTerrain};

/// `System`, plus a process-wide allocation counter backing the
/// zero-alloc assertion on the classify path.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Every fixture and request stream in this suite derives from this.
const SEED: u64 = 0x5E1F_BE4C;

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ServeBench {
    name: String,
    baseline_s: Option<f64>,
    optimized_s: f64,
    speedup: Option<f64>,
    note: String,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    suite: String,
    quick: bool,
    samples: usize,
    benches: Vec<ServeBench>,
}

/// What one fresh-connection burst request came back as.
enum BurstOutcome {
    /// A full response (status, body).
    Served(u16, String),
    /// A `503` shed; records whether `Retry-After` was present.
    Shed { retry_after: bool },
    /// The connection died before a response arrived (the server shed
    /// and closed before our upload finished — the `503` was lost to
    /// the reset).
    Reset,
}

/// One `POST /v1/report` over a fresh `Connection: close` connection,
/// tolerating the resets a shedding server legitimately produces.
fn burst_request(addr: SocketAddr, body: &[u8]) -> BurstOutcome {
    let Ok(mut stream) = TcpStream::connect(addr) else { return BurstOutcome::Reset };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut request = format!(
        "POST /v1/report HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    // A shed connection may reset mid-upload with the 503 already on
    // the wire; keep reading regardless of the write's fate.
    let _ = stream.write_all(&request);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let Some(status) = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return BurstOutcome::Reset;
    };
    if status == 503 {
        return BurstOutcome::Shed { retry_after: text.contains("\r\nRetry-After: 1\r\n") };
    }
    let response_body =
        text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    BurstOutcome::Served(status, response_body)
}

/// `p` in [0, 1] over an unsorted sample set (nearest-rank).
fn percentile(latencies: &mut [f64], p: f64) -> f64 {
    latencies.sort_unstable_by(f64::total_cmp);
    let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

/// Median wall-clock seconds of `f` over `samples` runs (one warm-up).
fn median_s<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let samples = if quick { 20 } else { 200 };
    let per_client = if quick { 40 } else { 250 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut benches = Vec::new();
    println!("serve suite (quick={quick}, {per_client} requests per client, {cores} cores)");

    // Deterministic clean uploads (same generation path as the serve
    // test harness) and the bundle that classifies them.
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(SEED), SEED);
    let docs: Vec<Vec<u8>> = sim
        .generate(CityId::WashingtonDc, 4)
        .into_iter()
        .map(|a| a.gpx.to_xml().into_bytes())
        .collect();
    let cfg_bundle = if quick { BundleConfig::tiny() } else { BundleConfig::quick() };
    let t = Instant::now();
    let bundle = ModelBundle::train(SEED, &cfg_bundle);
    println!("  bundle trained in {:.1} s", t.elapsed().as_secs_f64());

    // --- 1. Steady-state classify: timed, and asserted allocation-free
    //        while this is still the only running thread.
    let (_, profile) = ingest_one(&TrackSource::Raw(docs[0].clone()), &IngestConfig::default());
    let profile = profile.expect("clean fixture ingests");
    let mut arena = InferenceArena::new();
    bundle.warm(&mut arena);
    for task in bundle.tasks() {
        let bow = task.bow(&profile);
        black_box(task.classify_bow(&bow, &mut arena));
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        for task in bundle.tasks() {
            let bow = task.bow(&profile);
            black_box(task.classify_bow(&bow, &mut arena));
        }
    }
    let classify_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        classify_allocs, 0,
        "steady-state classify path allocated {classify_allocs} times over 200 classifications"
    );
    let classify_s = median_s(samples, || {
        for task in bundle.tasks() {
            let bow = task.bow(&profile);
            black_box(task.classify_bow(&bow, &mut arena));
        }
    });
    println!("  classify (both tasks): {:.1} us, 0 allocs", classify_s * 1e6);
    benches.push(ServeBench {
        name: "classify_both_tasks_warm".to_owned(),
        baseline_s: None,
        optimized_s: classify_s,
        speedup: None,
        note: "cached BoW + SVM + forest + MLP for TM-1 and TM-3; \
               0 heap allocations asserted over 200 classifications"
            .to_owned(),
    });

    // --- 2. The offline report path: what one request costs without
    //        any transport (ingest dominates; the baseline for HTTP).
    let offline_s = median_s(samples, || {
        black_box(bundle.report_json(&docs[0], &mut arena));
    });
    println!("  offline report_json: {:.2} ms", offline_s * 1e3);
    benches.push(ServeBench {
        name: "offline_report_json".to_owned(),
        baseline_s: None,
        optimized_s: offline_s,
        speedup: None,
        note: "full ingest -> featurize -> classify -> render for one clean upload, in-process"
            .to_owned(),
    });

    // Expected bodies, so the load generator can assert correctness of
    // every served response while it measures.
    let expected: Vec<(u16, String)> =
        docs.iter().map(|d| bundle.report_json(d, &mut arena)).collect();

    // --- 3. Served latency at 1 / 4 / 16 keep-alive clients.
    for &clients in &[1usize, 4, 16] {
        let served = ModelBundle::from_records(bundle.to_records()).expect("records rebuild");
        let cfg = ServeConfig {
            port: 0,
            workers: clients,
            model_dir: None,
            reload_poll: Duration::from_millis(200),
            ..ServeConfig::from_env()
        };
        let server = Server::start(served, &cfg).expect("bind");
        let addr = server.addr();

        let started = Instant::now();
        let lat_sets: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let docs = &docs;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        let mut latencies = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let which = (exec::mix_seed(SEED ^ c as u64, i as u64)
                                % docs.len() as u64)
                                as usize;
                            let t = Instant::now();
                            let resp =
                                client.post("/v1/report", &docs[which]).expect("post");
                            latencies.push(t.elapsed().as_secs_f64());
                            assert_eq!(
                                (resp.status, resp.text()),
                                (expected[which].0, expected[which].1.clone()),
                                "served response diverged from the offline report under load"
                            );
                        }
                        latencies
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        let wall = started.elapsed().as_secs_f64();
        server.shutdown();

        let mut all: Vec<f64> = lat_sets.into_iter().flatten().collect();
        let total = all.len();
        let p50 = percentile(&mut all, 0.50);
        let p99 = percentile(&mut all, 0.99);
        let qps = total as f64 / wall;
        println!(
            "  {clients:>2} client(s): p50 {:.2} ms, p99 {:.2} ms, {qps:.0} req/s",
            p50 * 1e3,
            p99 * 1e3
        );
        benches.push(ServeBench {
            name: format!("served_report_p50_{clients}clients"),
            baseline_s: Some(offline_s),
            optimized_s: p50,
            speedup: Some(offline_s / p50),
            note: format!(
                "{total} requests over {clients} keep-alive connection(s), \
                 {clients} worker(s), {cores} cores: p99 {:.3} ms, {qps:.0} req/s; \
                 every body asserted equal to the offline report; \
                 baseline is the in-process report path",
                p99 * 1e3
            ),
        });
    }

    // --- 4. Overload: a 4x burst (fresh connection per request) into
    //        a deliberately starved server (1 worker, queue depth 2).
    //        Accepted requests stay correct and bounded; the excess is
    //        shed as 503 + Retry-After, and the shed accounting in
    //        /v1/health must match what the clients observed exactly.
    {
        let served = ModelBundle::from_records(bundle.to_records()).expect("records rebuild");
        let cfg = ServeConfig {
            port: 0,
            workers: 1,
            queue_depth: 2,
            model_dir: None,
            ..ServeConfig::from_env()
        };
        let server = Server::start(served, &cfg).expect("bind");
        let addr = server.addr();
        let burst_clients = 4usize;

        let started = Instant::now();
        let outcomes: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..burst_clients)
                .map(|c| {
                    let docs = &docs;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut latencies = Vec::new();
                        let (mut shed, mut reset) = (0u64, 0u64);
                        for i in 0..per_client {
                            let which = (exec::mix_seed(SEED ^ 0x0b_u64 ^ c as u64, i as u64)
                                % docs.len() as u64)
                                as usize;
                            let t = Instant::now();
                            match burst_request(addr, &docs[which]) {
                                BurstOutcome::Served(status, body) => {
                                    latencies.push(t.elapsed().as_secs_f64());
                                    assert_eq!(
                                        (status, body),
                                        (expected[which].0, expected[which].1.clone()),
                                        "accepted burst response diverged from offline"
                                    );
                                }
                                BurstOutcome::Shed { retry_after } => {
                                    assert!(retry_after, "503 without Retry-After");
                                    shed += 1;
                                }
                                BurstOutcome::Reset => reset += 1,
                            }
                        }
                        (latencies, shed, reset)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("burst client")).collect()
        });
        let wall = started.elapsed().as_secs_f64();
        let health = server.health();
        server.shutdown();

        let mut accepted_lat: Vec<f64> =
            outcomes.iter().flat_map(|(l, _, _)| l.iter().copied()).collect();
        let shed_503: u64 = outcomes.iter().map(|(_, s, _)| s).sum();
        let resets: u64 = outcomes.iter().map(|(_, _, r)| r).sum();
        let total = (burst_clients * per_client) as u64;
        let served_ok = accepted_lat.len() as u64;
        assert_eq!(served_ok + shed_503 + resets, total, "every burst request accounted for");
        assert_eq!(
            health.shed(),
            shed_503 + resets,
            "the server's shed accounting must match the clients' ledger: {health:?}"
        );
        assert_eq!(
            health.accepted, served_ok,
            "every admitted connection must have been answered: {health:?}"
        );
        assert!(served_ok > 0, "the burst starved every request");
        assert!(health.shed() > 0, "a 4x burst into queue depth 2 must shed");

        let p99 = percentile(&mut accepted_lat, 0.99);
        let shed_rate = health.shed() as f64 / total as f64;
        println!(
            "  overload 4x burst: {served_ok}/{total} served, {} shed \
             ({:.0}% | {} as 503, {resets} as resets), accepted p99 {:.2} ms",
            health.shed(),
            shed_rate * 100.0,
            shed_503,
            p99 * 1e3
        );
        benches.push(ServeBench {
            name: "served_overload_4x_p99".to_owned(),
            baseline_s: Some(offline_s),
            optimized_s: p99,
            speedup: None,
            note: format!(
                "p99 latency of the {served_ok} accepted requests while {burst_clients} \
                 fresh-connection clients burst {total} uploads into 1 worker with queue \
                 depth 2 over {wall:.2} s; accepted bodies byte-equal offline; baseline \
                 is the in-process report path"
            ),
        });
        benches.push(ServeBench {
            name: "served_overload_4x_shed_rate".to_owned(),
            baseline_s: None,
            optimized_s: shed_rate,
            speedup: None,
            note: format!(
                "dimensionless: fraction of {total} burst requests shed ({shed_503} \
                 observed as 503 + Retry-After, {resets} as connection resets); \
                 /v1/health shed counter matched the client ledger exactly"
            ),
        });
    }

    let report = BenchReport {
        suite: "serve".to_owned(),
        quick,
        samples,
        benches,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Round-trip before writing so a malformed report can never land.
    let parsed: BenchReport = serde_json::from_str(&json).expect("report parses back");
    assert_eq!(parsed.benches.len(), report.benches.len());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
