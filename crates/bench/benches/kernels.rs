//! Kernel-level benchmarks for the hot paths underneath the attack
//! pipeline: BoW featurization, the SVM epoch, the blocked matmul at
//! the paper-CNN's im2col shapes, and conv forward/backward.
//!
//! Unlike the `perf_*` suites (which time whole learners), this suite
//! pins *before/after pairs* for the sparse + blocked kernel layer:
//! every entry that has a baseline runs the old dense/naive code
//! (`Tensor::matmul_reference`, dense Pegasos, dense BoW rows) against
//! the new kernel on identical inputs, and reports the speedup. The
//! results are written to `BENCH_kernels.json` at the repository root
//! so the perf trajectory is tracked in-tree.
//!
//! Run with `cargo bench -p bench --bench kernels`; set `BENCH_QUICK=1`
//! for a fast smoke (fewer samples, same shapes) as `scripts/verify.sh`
//! does.

use classicml::{SvmClassifier, SvmConfig};
use elev_core::ingest::{ingest_one, IngestConfig, StreamingIngest, TrackSource};
use neuralnet::{models, train, train_in_arena, Adam, Layer, TrainArena, TrainConfig};
use std::fmt::Write as _;
use sparsemat::{CsrMatrix, SparseVec};
use std::hint::black_box;
use std::time::Instant;
use tensorlite::Tensor;
use textrep::{Discretizer, FeatureSelection, TextPipeline};

/// One before/after measurement (times in seconds, medians).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct KernelBench {
    name: String,
    /// Median seconds for the old dense/naive kernel (absent when the
    /// old code no longer exists to time).
    baseline_s: Option<f64>,
    /// Median seconds for the shipped kernel.
    optimized_s: f64,
    /// `baseline_s / optimized_s`.
    speedup: Option<f64>,
    note: String,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    suite: String,
    quick: bool,
    samples: usize,
    benches: Vec<KernelBench>,
}

/// Median wall-clock seconds of `f` over `samples` runs (one warm-up).
fn median_s<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

fn entry(
    name: &str,
    samples: usize,
    note: &str,
    mut baseline: Option<impl FnMut()>,
    mut optimized: impl FnMut(),
) -> KernelBench {
    let baseline_s = baseline.as_mut().map(|f| median_s(samples, f));
    let optimized_s = median_s(samples, &mut optimized);
    let speedup = baseline_s.map(|b| b / optimized_s);
    match speedup {
        Some(s) => println!(
            "  {name}: baseline {:.3} ms, optimized {:.3} ms ({s:.2}x)",
            baseline_s.unwrap() * 1e3,
            optimized_s * 1e3
        ),
        None => println!("  {name}: {:.3} ms", optimized_s * 1e3),
    }
    KernelBench {
        name: name.to_owned(),
        baseline_s,
        optimized_s,
        speedup,
        note: note.to_owned(),
    }
}

/// Synthetic elevation profiles with enough texture for an 8-gram vocab.
fn corpus(n: usize, len: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..len)
                .map(|t| {
                    let t = t as f64;
                    40.0 + (i % 7) as f64 * 13.0
                        + (t * 0.21 + i as f64 * 0.7).sin() * 9.0
                        + (t * 0.047).cos() * 23.0
                })
                .collect()
        })
        .collect()
}

/// Deterministic serialized GPX documents: `n` docs of `len` timed,
/// elevated trackpoints each (1 Hz sampling, so the gap filler stays
/// idle and both pipelines exercise the clean happy path).
fn gpx_corpus(n: usize, len: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut doc = String::with_capacity(len * 96 + 128);
            doc.push_str("<?xml version=\"1.0\"?>\n<gpx version=\"1.1\"><trk><trkseg>\n");
            for t in 0..len {
                let lat = 47.30 + (i as f64) * 1e-3 + (t as f64) * 1.1e-5;
                let lon = 8.50 + (t as f64) * 1.7e-5;
                let ele = 420.0
                    + (i % 5) as f64 * 17.0
                    + ((t as f64) * 0.11 + i as f64).sin() * 12.0;
                let (h, m, s) = (8 + t / 3600, (t / 60) % 60, t % 60);
                let _ = writeln!(
                    doc,
                    "<trkpt lat=\"{lat:.6}\" lon=\"{lon:.6}\"><ele>{ele:.2}</ele>\
                     <time>2024-05-01T{h:02}:{m:02}:{s:02}Z</time></trkpt>"
                );
            }
            doc.push_str("</trkseg></trk></gpx>\n");
            doc.into_bytes()
        })
        .collect()
}

/// BoW-like sparse rows: `nnz` nonzeros per row, L1-normalized.
fn sparse_rows(n: usize, dim: usize, nnz: usize) -> (Vec<SparseVec>, Vec<u32>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut idx: Vec<u32> = (0..nnz)
            .map(|t| ((i * 2654435761 + t * 40503) % dim) as u32)
            .collect();
        idx.sort_unstable();
        idx.dedup();
        let w = 1.0 / idx.len() as f32;
        let vals = vec![w; idx.len()];
        rows.push(SparseVec::new(dim, idx, vals));
        labels.push((i % 4) as u32);
    }
    (rows, labels)
}

/// The exact scan's vocabulary-overlap prefilter (feature-index range
/// and 512-bit bloom), mirrored from the matcher so the baseline
/// times the shipped exact path, not a strawman.
struct OverlapSig {
    first: u32,
    last: u32,
    bloom: [u64; 8],
}

impl OverlapSig {
    fn new(indices: &[u32]) -> Self {
        let mut bloom = [0u64; 8];
        for &i in indices {
            bloom[(i as usize >> 6) % 8] |= 1u64 << (i & 63);
        }
        Self {
            first: indices.first().copied().unwrap_or(u32::MAX),
            last: indices.last().copied().unwrap_or(0),
            bloom,
        }
    }

    fn may_overlap(&self, other: &Self) -> bool {
        if self.first > other.last || other.first > self.last {
            return false;
        }
        self.bloom.iter().zip(&other.bloom).any(|(a, b)| a & b != 0)
    }
}

/// Top-3 distinct-athlete hits ordered score desc then athlete asc —
/// the matcher's hit discipline.
fn push_top3(top: &mut Vec<(f32, u64)>, score: f32, athlete: u64) {
    let before = |a: &(f32, u64), b: &(f32, u64)| match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    };
    if let Some(existing) = top.iter_mut().find(|e| e.1 == athlete) {
        if before(&(score, athlete), existing) {
            *existing = (score, athlete);
        }
    } else {
        top.push((score, athlete));
    }
    top.sort_by(|a, b| {
        if before(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    top.truncate(3);
}

fn deterministic_tensor(shape: &[usize], salt: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, shape)
}

fn matmul_pair(name: &str, m: usize, k: usize, n: usize, samples: usize, note: &str) -> KernelBench {
    let a = deterministic_tensor(&[m, k], 11);
    let b = deterministic_tensor(&[k, n], 29);
    entry(
        name,
        samples,
        note,
        Some(|| {
            black_box(a.matmul_reference(&b));
        }),
        || {
            black_box(a.matmul(&b));
        },
    )
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let samples = if quick { 3 } else { 9 };
    let mut benches = Vec::new();
    println!("kernels suite (quick={quick}, {samples} samples per bench)");

    // --- GPX ingestion: the pre-streaming DOM front-end (byte-at-a-time
    // tokenizer, one owned `String` per name/attribute/text run, full
    // `Gpx` tree) vs the shipped streaming path (one reused
    // `StreamingIngest`: borrowed events straight into the flat point
    // buffer, zero steady-state allocations). Both sides feed the same
    // repair pipeline, whose outputs are pinned bit-identical by the
    // parity fuzz campaign and the `ingest.stream` golden; the pair
    // measures the parse/flatten layer this change replaced. The old
    // reader no longer ships, so — like `matmul_reference` — the bench
    // carries a faithful reconstruction (`dom_baseline` below).
    for (name, docs) in [
        ("ingest_throughput_corpus_48x400", gpx_corpus(48, 400)),
        ("ingest_throughput_long_track_4000pts", gpx_corpus(1, 4000)),
    ] {
        let bytes: usize = docs.iter().map(Vec::len).sum();
        let cfg = IngestConfig::default();
        let mut ing = StreamingIngest::default();
        let mut b = entry(
            name,
            samples,
            "",
            Some(|| {
                for doc in &docs {
                    let gpx = dom_baseline::parse_bytes(doc).expect("corpus is well-formed");
                    black_box(ingest_one(&TrackSource::Parsed(gpx), &cfg));
                }
            }),
            || {
                for doc in &docs {
                    black_box(ing.ingest_bytes(doc));
                }
            },
        );
        let mib = bytes as f64 / (1024.0 * 1024.0);
        let tracks = docs.len() as f64;
        let dom_s = b.baseline_s.expect("ingest pair always has a baseline");
        b.note = format!(
            "{} timed GPX doc(s), {:.2} MiB per pass; pre-streaming DOM reader \
             (reconstructed) {:.1} MiB/s / {:.0} tracks/s, streaming {:.1} MiB/s / \
             {:.0} tracks/s; identical dispositions and bit-identical profiles on \
             both paths",
            docs.len(),
            mib,
            mib / dom_s,
            tracks / dom_s,
            mib / b.optimized_s,
            tracks / b.optimized_s,
        );
        benches.push(b);
    }

    // --- BoW featurization: dense materialization vs staying sparse.
    let signals = corpus(64, 600);
    let pipeline = TextPipeline::fit(Discretizer::Floor, 8, FeatureSelection::keep_all(), &signals);
    benches.push(entry(
        "bow_featurize_64x600_8gram",
        samples,
        "transform_all materializes dense rows over the full vocabulary; \
         transform_all_csr emits the same rows as CSR without densifying",
        Some(|| {
            black_box(pipeline.transform_all(&signals));
        }),
        || {
            black_box(pipeline.transform_all_csr(&signals));
        },
    ));

    // --- SVM epochs: dense Pegasos dots vs sparse dots, same RNG stream.
    let (rows, labels) = sparse_rows(300, 4096, 10);
    let csr = CsrMatrix::from_rows(&rows);
    let dense: Vec<Vec<f32>> = rows.iter().map(SparseVec::to_dense).collect();
    let cfg = SvmConfig { epochs: 5, ..Default::default() };
    benches.push(entry(
        "svm_epoch_300x4096_nnz10",
        samples,
        "5 Pegasos epochs, 4 classes; the sparse fit touches only the \
         ~10 nonzeros per row and produces the bit-identical hyperplane",
        Some(|| {
            black_box(SvmClassifier::fit(&dense, &labels, &cfg, 1));
        }),
        || {
            black_box(SvmClassifier::fit_sparse(&csr, &labels, &cfg, 1));
        },
    ));

    // --- Blocked matmul at the paper-CNN im2col shapes and the MLP head.
    benches.push(matmul_pair(
        "matmul_conv1_8x75x1024",
        8,
        75,
        1024,
        samples,
        "conv1 im2col: [8,75]x[75,1024] per 32x32 image; with only 8 \
         output rows each packed B panel feeds two register tiles, so \
         packing amortizes poorly and the shape stays bandwidth-bound \
         (~1.3-1.5x measured)",
    ));
    benches.push(matmul_pair(
        "matmul_conv2_16x200x256",
        16,
        200,
        256,
        samples,
        "conv2 im2col: [16,200]x[200,256] per 16x16 map",
    ));
    benches.push(matmul_pair(
        "matmul_mlp_64x2048x100",
        64,
        2048,
        100,
        samples,
        "text-MLP input layer: batch 64 over a 2048-feature vocabulary",
    ));

    // --- Conv forward / forward+backward at the Fig. 7 architecture.
    // Baselines emulate the pre-arena path: `reset_scratch` drops the
    // persistent im2col columns / weight-matrix views / argmax buffers
    // so every call reallocates them, exactly as the old code did. Both
    // sides run the same kernels on the same inputs; only the scratch
    // lifetime differs. `shards: Some(1)` keeps the step serial so the
    // pair isolates allocation behavior, not data parallelism.
    let batch = 16;
    let x = deterministic_tensor(&[batch, 3, 32, 32], 7);
    let y: Vec<u32> = (0..batch).map(|i| (i % 4) as u32).collect();
    let mut fwd_base = models::paper_cnn(4, 1);
    let mut fwd_net = models::paper_cnn(4, 1);
    benches.push(entry(
        "conv_forward_16imgs",
        samples,
        "paper CNN forward on 16 images (blocked im2col matmuls); \
         baseline reallocates im2col/weight-view scratch per call, \
         optimized reuses the layer arenas",
        Some(|| {
            fwd_base.reset_scratch();
            black_box(fwd_base.forward(&x, false));
        }),
        || {
            black_box(fwd_net.forward(&x, false));
        },
    ));
    let train_cfg = TrainConfig {
        epochs: 1,
        batch_size: batch,
        shards: Some(1),
        ..Default::default()
    };
    let mut bwd_base = models::paper_cnn(4, 1);
    let mut bwd_net = models::paper_cnn(4, 1);
    let mut bwd_adam = Adam::new(train_cfg.lr);
    let mut bwd_arena = TrainArena::new();
    benches.push(entry(
        "conv_fwd_bwd_16imgs",
        samples,
        "one training step on 16 images; backward uses the fused \
         matmul_at/matmul_bt kernels instead of allocating transposes; \
         baseline drops layer scratch and the training arena every \
         step, optimized keeps both warm",
        Some(|| {
            bwd_base.reset_scratch();
            black_box(train(&mut bwd_base, &x, &y, &train_cfg));
        }),
        || {
            black_box(train_in_arena(
                &mut bwd_net,
                &x,
                &y,
                &train_cfg,
                &mut bwd_adam,
                &mut bwd_arena,
            ));
        },
    ));

    // --- Population corpus generation: one 64-athlete shard of the
    // streaming generator (habit models + trajectories + elevation
    // profiles from the seed tree). No baseline: there was no prior
    // bulk generator — the entry pins absolute corpus throughput.
    let pop = {
        let mut p = routegen::PopulationConfig::new(64, 42);
        p.shard_size = 64;
        p
    };
    let terrain = pop.terrain();
    let shard = pop.generate_shard(&terrain, 0);
    let (gen_tracks, gen_points) = (shard.tracks(), shard.points());
    // lat + lon + elevation as f64 per point.
    let gen_mb = (gen_points * 24) as f64 / 1e6;
    let mut b = entry(
        "corpus_gen_shard64",
        samples,
        "",
        None::<fn()>,
        || {
            black_box(pop.generate_shard(&terrain, 0));
        },
    );
    b.note = format!(
        "one {}-athlete population shard ({} tracks, {} points, ~{:.2} MB of \
         track data): {:.0} tracks/s, {:.1} MB/s; regeneration is bit-identical \
         at any shard order and thread count (corpus.shard golden)",
        pop.shard_size,
        gen_tracks,
        gen_points,
        gen_mb,
        gen_tracks as f64 / b.optimized_s,
        gen_mb / b.optimized_s,
    );
    benches.push(b);

    // --- Feature-store streaming: re-featurizing the shard's profiles
    // every sweep (the pre-featstore path) vs streaming the same CSR
    // rows back from the checksummed shard file via pread.
    {
        let profiles: Vec<Vec<f64>> = shard
            .athletes
            .iter()
            .flat_map(|a| &a.activities)
            .map(|act| act.elevation_profile())
            .collect();
        let store_pipeline =
            TextPipeline::fit(Discretizer::Floor, 4, FeatureSelection::standard(), &profiles);
        let dir = std::env::temp_dir().join(format!("elev-bench-fst-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut w =
            featstore::ShardWriter::create(&dir, 0, store_pipeline.n_features() as u64, 42)
                .expect("create shard");
        for athlete in &shard.athletes {
            for (ai, act) in athlete.activities.iter().enumerate() {
                let sv = store_pipeline.transform_sparse(&act.elevation_profile());
                w.append_row(
                    athlete.habits.id,
                    athlete.habits.city_index as u32,
                    ai as u32,
                    sv.indices(),
                    sv.values(),
                )
                .expect("append row");
            }
        }
        let meta = w.finish().expect("finish shard");
        let path = dir.join(&meta.file);
        let file_mb = meta.bytes as f64 / 1e6;
        let mut b = entry(
            "featstore_read_shard64",
            samples,
            "",
            Some(|| {
                for p in &profiles {
                    black_box(store_pipeline.transform_sparse(p));
                }
            }),
            || {
                let mut r = featstore::ShardReader::open(&path).expect("open shard");
                let mut row = featstore::RowBuf::default();
                while r.next_row(&mut row).expect("next row") {
                    black_box(&row);
                }
            },
        );
        b.note = format!(
            "{} CSR rows, {:.2} MB shard file: streaming reads {:.1} MB/s \
             (checksum-verified, zero-copy into a reused RowBuf); baseline \
             re-featurizes the same {} profiles through transform_sparse",
            meta.rows,
            file_mb,
            file_mb / b.optimized_s,
            profiles.len(),
        );
        benches.push(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Probe matching at population scale: the shipped exact scan
    // (streaming every row, overlap-prefiltered dots) vs the
    // deterministic IVF index (centroid routing + posting-list
    // rescoring with the same exact dot). Both paths run over one
    // published feature store built from the real population corpus;
    // the pair is the sublinearity evidence for `ELEV_ANN`.
    {
        let n_athletes = if quick { 2_000 } else { 10_000 };
        let tag = if quick { "2k" } else { "10k" };
        let mut cfg = elev_core::scale::ScaleConfig::new(n_athletes, 42);
        cfg.population.shard_size = 500;
        cfg.store_dir =
            std::env::temp_dir().join(format!("elev-bench-ann-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
        let exec = exec::Executor::from_env();
        let build = elev_core::scale::build_store(&cfg, &exec).expect("build store");
        let store = featstore::FeatureStore::open(&cfg.store_dir).expect("open store");

        // Probe features live in the store's feature space: the same
        // shard-0-fitted vocabulary `build_store` used.
        let terrain = cfg.population.terrain();
        let shard0 = cfg.population.generate_shard(&terrain, 0);
        let fit_profiles: Vec<Vec<f64>> = shard0
            .athletes
            .iter()
            .flat_map(|a| &a.activities)
            .map(|act| act.elevation_profile())
            .collect();
        let pipeline =
            TextPipeline::fit(Discretizer::Floor, 4, FeatureSelection::standard(), &fit_profiles);
        assert_eq!(pipeline.n_features(), build.n_cols, "probe space != store space");

        let n_probes = 32u64;
        let probes: Vec<(Vec<u32>, Vec<f32>, f32)> = (0..n_probes)
            .map(|id| {
                let habits = cfg.population.habits(id);
                let mut acts =
                    cfg.population.athlete_activities(&terrain, id, habits.weekly_cadence + 1);
                let held_out = acts.pop().expect("cadence + 1 activities");
                let sv = pipeline.transform_sparse(&held_out.elevation_profile());
                (sv.indices().to_vec(), sv.values().to_vec(), annindex::l2(sv.values()))
            })
            .collect();
        let probe_sigs: Vec<OverlapSig> =
            probes.iter().map(|(idx, _, _)| OverlapSig::new(idx)).collect();

        // Each pass answers every query independently — the serving
        // shape (one uploaded profile, one top-3 answer), which is
        // where sublinearity pays: the exact path must stream the
        // whole store per query, the IVF path only its probed lists.
        let n_shards = store.manifest().shards.len();
        let exact_query = |pi: usize, row: &mut featstore::RowBuf| {
            let (pidx, pval, pnorm) = &probes[pi];
            let mut top: Vec<(f32, u64)> = Vec::new();
            for s in 0..n_shards {
                let mut r = store.reader(s).expect("reader");
                while r.next_row(row).expect("next row") {
                    let rn = annindex::l2(&row.values);
                    if rn == 0.0 || !probe_sigs[pi].may_overlap(&OverlapSig::new(&row.indices)) {
                        continue;
                    }
                    let dot = sparsemat::dot_sorted(pidx, pval, &row.indices, &row.values);
                    if dot > 0.0 {
                        push_top3(&mut top, dot / (pnorm * rn), row.athlete);
                    }
                }
            }
            top
        };

        let (index, _) =
            annindex::AnnIndex::ensure(&store, 64, cfg.population.seed, &exec).expect("index");
        let probe_lists: Vec<Vec<u32>> = probes
            .iter()
            .map(|(idx, val, _)| index.codebook().top_centroids(idx, val, 8))
            .collect();
        let ann_query = |pi: usize, row: &mut featstore::RowBuf| {
            let (pidx, pval, pnorm) = &probes[pi];
            let mut top: Vec<(f32, u64)> = Vec::new();
            let mut rescored = 0u64;
            for s in 0..n_shards {
                let lists = index.postings(s).expect("postings");
                let mut r = store.reader(s).expect("reader");
                for &c in &probe_lists[pi] {
                    for e in &lists[c as usize] {
                        if e.norm == 0.0 {
                            continue;
                        }
                        r.read_row_at(e.offset, row).expect("positioned row");
                        rescored += 1;
                        let dot = sparsemat::dot_sorted(pidx, pval, &row.indices, &row.values);
                        if dot > 0.0 {
                            push_top3(&mut top, dot / (pnorm * e.norm), e.athlete);
                        }
                    }
                }
            }
            (top, rescored)
        };

        // Recall accounting outside the timed region.
        let mut row = featstore::RowBuf::default();
        let mut rescored = 0u64;
        let recall: f64 = (0..probes.len())
            .map(|pi| {
                let exact = exact_query(pi, &mut row);
                let (ann, pairs) = ann_query(pi, &mut row);
                rescored += pairs;
                if exact.is_empty() {
                    return 1.0;
                }
                let kept =
                    exact.iter().filter(|(_, a)| ann.iter().any(|(_, b)| a == b)).count();
                kept as f64 / exact.len() as f64
            })
            .sum::<f64>()
            / probes.len() as f64;
        assert!(recall >= 0.95, "IVF recall@3 {recall:.4} below the 0.95 floor");
        let rows_total = build.rows * n_probes;

        let mut b = entry(
            &format!("ann_match_{tag}"),
            samples,
            "",
            Some(|| {
                let mut row = featstore::RowBuf::default();
                for pi in 0..probes.len() {
                    black_box(exact_query(pi, &mut row));
                }
            }),
            || {
                let mut row = featstore::RowBuf::default();
                for pi in 0..probes.len() {
                    black_box(ann_query(pi, &mut row));
                }
            },
        );
        let mib = build.bytes as f64 / (1024.0 * 1024.0);
        let exact_s = b.baseline_s.expect("ann pair always has a baseline");
        b.note = format!(
            "{n_probes} independent queries against {} rows ({n_athletes} athletes, \
             {:.1} MiB store): the exact scan streams every row per query \
             ({:.1} MiB/s/query); IVF (64 centroids, 8 probed lists/query) rescores \
             {rescored} of {rows_total} candidate pairs ({:.1}%) via positioned reads, \
             recall@3 {recall:.4}; both paths are bit-identical at any thread count \
             and shard order",
            build.rows,
            mib,
            mib * n_probes as f64 / exact_s,
            rescored as f64 * 100.0 / rows_total as f64,
        );
        benches.push(b);
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    let report = BenchReport {
        suite: "kernels".to_owned(),
        quick,
        samples,
        benches,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Round-trip before writing so a malformed report can never land.
    let parsed: BenchReport = serde_json::from_str(&json).expect("report parses back");
    assert_eq!(parsed.benches.len(), report.benches.len());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

/// The GPX front-end as it existed before the zero-copy streaming
/// reader: a byte-at-a-time tokenizer materializing one owned `String`
/// per element name, attribute, and text run (entity decode copied even
/// when there was nothing to decode), building the full `Gpx` tree.
/// Reconstructed here verbatim-modulo-error-detail so the
/// `ingest_throughput_*` baselines time the code this change replaced;
/// error *construction* is coarsened to `()` because the bench corpus
/// is well-formed and never exercises those paths.
mod dom_baseline {
    use geoprim::LatLon;
    use gpxfile::{Gpx, Track, TrackPoint, TrackSegment};

    enum XmlEvent {
        Start { name: String, attributes: Vec<(String, String)> },
        End { name: String },
        Text(String),
    }

    struct XmlReader<'a> {
        src: &'a [u8],
        pos: usize,
        stack: Vec<String>,
        pending_end: Option<String>,
    }

    impl<'a> XmlReader<'a> {
        fn new(src: &'a str) -> Self {
            Self { src: src.as_bytes(), pos: 0, stack: Vec::new(), pending_end: None }
        }

        fn next_event(&mut self) -> Result<Option<XmlEvent>, ()> {
            if let Some(name) = self.pending_end.take() {
                self.stack.pop();
                return Ok(Some(XmlEvent::End { name }));
            }
            loop {
                if self.pos >= self.src.len() {
                    if self.stack.pop().is_some() {
                        return Err(());
                    }
                    return Ok(None);
                }
                if self.src[self.pos] == b'<' {
                    if self.starts_with("<?") {
                        self.skip_until("?>")?;
                        continue;
                    }
                    if self.starts_with("<!--") {
                        self.skip_until("-->")?;
                        continue;
                    }
                    if self.starts_with("<!") {
                        self.skip_until(">")?;
                        continue;
                    }
                    if self.starts_with("</") {
                        return self.parse_end_tag().map(Some);
                    }
                    return self.parse_start_tag().map(Some);
                }
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'<' {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| ())?;
                if self.stack.is_empty() && raw.trim().is_empty() {
                    continue;
                }
                return Ok(Some(XmlEvent::Text(decode_entities(raw)?)));
            }
        }

        fn starts_with(&self, s: &str) -> bool {
            self.src[self.pos..].starts_with(s.as_bytes())
        }

        fn skip_until(&mut self, end: &str) -> Result<(), ()> {
            let hay = &self.src[self.pos..];
            match hay.windows(end.len()).position(|w| w == end.as_bytes()) {
                Some(i) => {
                    self.pos += i + end.len();
                    Ok(())
                }
                None => Err(()),
            }
        }

        fn parse_end_tag(&mut self) -> Result<XmlEvent, ()> {
            self.pos += 2;
            let name = self.read_name()?;
            self.skip_ws();
            if self.pos >= self.src.len() || self.src[self.pos] != b'>' {
                return Err(());
            }
            self.pos += 1;
            match self.stack.pop() {
                Some(open) if open == name => Ok(XmlEvent::End { name }),
                _ => Err(()),
            }
        }

        fn parse_start_tag(&mut self) -> Result<XmlEvent, ()> {
            self.pos += 1;
            let name = self.read_name()?;
            let mut attributes = Vec::new();
            loop {
                self.skip_ws();
                let Some(&b) = self.src.get(self.pos) else {
                    return Err(());
                };
                match b {
                    b'>' => {
                        self.pos += 1;
                        self.stack.push(name.clone());
                        return Ok(XmlEvent::Start { name, attributes });
                    }
                    b'/' => {
                        if !self.starts_with("/>") {
                            return Err(());
                        }
                        self.pos += 2;
                        self.stack.push(name.clone());
                        self.pending_end = Some(name.clone());
                        return Ok(XmlEvent::Start { name, attributes });
                    }
                    _ => {
                        let key = self.read_name()?;
                        self.skip_ws();
                        if self.src.get(self.pos) != Some(&b'=') {
                            return Err(());
                        }
                        self.pos += 1;
                        self.skip_ws();
                        let quote = match self.src.get(self.pos) {
                            Some(&q @ (b'"' | b'\'')) => q,
                            _ => return Err(()),
                        };
                        self.pos += 1;
                        let start = self.pos;
                        while self.pos < self.src.len() && self.src[self.pos] != quote {
                            self.pos += 1;
                        }
                        if self.pos >= self.src.len() {
                            return Err(());
                        }
                        let raw =
                            std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| ())?;
                        self.pos += 1;
                        attributes.push((key, decode_entities(raw)?));
                    }
                }
            }
        }

        fn read_name(&mut self) -> Result<String, ()> {
            let start = self.pos;
            while self.pos < self.src.len() && is_name_byte(self.src[self.pos]) {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(());
            }
            Ok(std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| ())?.to_owned())
        }

        fn skip_ws(&mut self) {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
        }
    }

    fn is_name_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.')
    }

    fn decode_entities(s: &str) -> Result<String, ()> {
        if !s.contains('&') {
            return Ok(s.to_owned());
        }
        let mut out = String::with_capacity(s.len());
        let mut rest = s;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i + 1..];
            let j = rest.find(';').ok_or(())?;
            match &rest[..j] {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ => return Err(()),
            }
            rest = &rest[j + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    pub fn parse_bytes(src: &[u8]) -> Result<Gpx, ()> {
        let text = std::str::from_utf8(src).map_err(|_| ())?;
        parse(text)
    }

    fn parse(src: &str) -> Result<Gpx, ()> {
        let mut reader = XmlReader::new(src);
        let mut gpx: Option<Gpx> = None;
        let mut path: Vec<String> = Vec::new();
        let mut cur_track: Option<Track> = None;
        let mut cur_segment: Option<TrackSegment> = None;
        let mut cur_point: Option<TrackPoint> = None;
        let mut text = String::new();

        while let Some(event) = reader.next_event()? {
            match event {
                XmlEvent::Start { name, attributes } => {
                    if path.is_empty() {
                        if name != "gpx" {
                            return Err(());
                        }
                        let creator = attributes
                            .iter()
                            .find(|(k, _)| k == "creator")
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default();
                        gpx = Some(Gpx::new(creator));
                    } else {
                        match (path.last().map(String::as_str).unwrap_or(""), name.as_str()) {
                            ("gpx", "trk") => cur_track = Some(Track::default()),
                            ("trk", "trkseg") => cur_segment = Some(TrackSegment::default()),
                            ("trkseg", "trkpt") => {
                                cur_point = Some(parse_trkpt(&attributes)?);
                            }
                            _ => {}
                        }
                    }
                    path.push(name);
                    text.clear();
                }
                XmlEvent::Text(t) => text.push_str(&t),
                XmlEvent::End { name } => {
                    let parent =
                        if path.len() >= 2 { path[path.len() - 2].as_str() } else { "" };
                    match name.as_str() {
                        "ele" if parent == "trkpt" => {
                            if let Some(p) = cur_point.as_mut() {
                                let v: f64 = text.trim().parse().map_err(|_| ())?;
                                if !v.is_finite() {
                                    return Err(());
                                }
                                p.elevation_m = Some(v);
                            }
                        }
                        "time" if parent == "trkpt" => {
                            if let Some(p) = cur_point.as_mut() {
                                p.time = Some(text.trim().to_owned());
                            }
                        }
                        "name" if parent == "trk" => {
                            if let Some(t) = cur_track.as_mut() {
                                t.name = Some(text.trim().to_owned());
                            }
                        }
                        "trkpt" => {
                            if let (Some(seg), Some(p)) = (cur_segment.as_mut(), cur_point.take())
                            {
                                seg.points.push(p);
                            }
                        }
                        "trkseg" => {
                            if let (Some(trk), Some(seg)) =
                                (cur_track.as_mut(), cur_segment.take())
                            {
                                trk.segments.push(seg);
                            }
                        }
                        "trk" => {
                            if let (Some(g), Some(trk)) = (gpx.as_mut(), cur_track.take()) {
                                g.tracks.push(trk);
                            }
                        }
                        _ => {}
                    }
                    path.pop();
                    text.clear();
                }
            }
        }
        gpx.ok_or(())
    }

    fn parse_trkpt(attributes: &[(String, String)]) -> Result<TrackPoint, ()> {
        let get = |key: &str| {
            attributes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str()).ok_or(())
        };
        let lat: f64 = get("lat")?.parse().map_err(|_| ())?;
        let lon: f64 = get("lon")?.parse().map_err(|_| ())?;
        let coord = LatLon::validated(lat, lon).map_err(|_| ())?;
        Ok(TrackPoint::new(coord))
    }
}
