//! Kernel-level benchmarks for the hot paths underneath the attack
//! pipeline: BoW featurization, the SVM epoch, the blocked matmul at
//! the paper-CNN's im2col shapes, and conv forward/backward.
//!
//! Unlike the `perf_*` suites (which time whole learners), this suite
//! pins *before/after pairs* for the sparse + blocked kernel layer:
//! every entry that has a baseline runs the old dense/naive code
//! (`Tensor::matmul_reference`, dense Pegasos, dense BoW rows) against
//! the new kernel on identical inputs, and reports the speedup. The
//! results are written to `BENCH_kernels.json` at the repository root
//! so the perf trajectory is tracked in-tree.
//!
//! Run with `cargo bench -p bench --bench kernels`; set `BENCH_QUICK=1`
//! for a fast smoke (fewer samples, same shapes) as `scripts/verify.sh`
//! does.

use classicml::{SvmClassifier, SvmConfig};
use neuralnet::{models, train, train_in_arena, Adam, Layer, TrainArena, TrainConfig};
use sparsemat::{CsrMatrix, SparseVec};
use std::hint::black_box;
use std::time::Instant;
use tensorlite::Tensor;
use textrep::{Discretizer, FeatureSelection, TextPipeline};

/// One before/after measurement (times in seconds, medians).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct KernelBench {
    name: String,
    /// Median seconds for the old dense/naive kernel (absent when the
    /// old code no longer exists to time).
    baseline_s: Option<f64>,
    /// Median seconds for the shipped kernel.
    optimized_s: f64,
    /// `baseline_s / optimized_s`.
    speedup: Option<f64>,
    note: String,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    suite: String,
    quick: bool,
    samples: usize,
    benches: Vec<KernelBench>,
}

/// Median wall-clock seconds of `f` over `samples` runs (one warm-up).
fn median_s<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(f64::total_cmp);
    times[times.len() / 2]
}

fn entry(
    name: &str,
    samples: usize,
    note: &str,
    mut baseline: Option<impl FnMut()>,
    mut optimized: impl FnMut(),
) -> KernelBench {
    let baseline_s = baseline.as_mut().map(|f| median_s(samples, f));
    let optimized_s = median_s(samples, &mut optimized);
    let speedup = baseline_s.map(|b| b / optimized_s);
    match speedup {
        Some(s) => println!(
            "  {name}: baseline {:.3} ms, optimized {:.3} ms ({s:.2}x)",
            baseline_s.unwrap() * 1e3,
            optimized_s * 1e3
        ),
        None => println!("  {name}: {:.3} ms", optimized_s * 1e3),
    }
    KernelBench {
        name: name.to_owned(),
        baseline_s,
        optimized_s,
        speedup,
        note: note.to_owned(),
    }
}

/// Synthetic elevation profiles with enough texture for an 8-gram vocab.
fn corpus(n: usize, len: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..len)
                .map(|t| {
                    let t = t as f64;
                    40.0 + (i % 7) as f64 * 13.0
                        + (t * 0.21 + i as f64 * 0.7).sin() * 9.0
                        + (t * 0.047).cos() * 23.0
                })
                .collect()
        })
        .collect()
}

/// BoW-like sparse rows: `nnz` nonzeros per row, L1-normalized.
fn sparse_rows(n: usize, dim: usize, nnz: usize) -> (Vec<SparseVec>, Vec<u32>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut idx: Vec<u32> = (0..nnz)
            .map(|t| ((i * 2654435761 + t * 40503) % dim) as u32)
            .collect();
        idx.sort_unstable();
        idx.dedup();
        let w = 1.0 / idx.len() as f32;
        let vals = vec![w; idx.len()];
        rows.push(SparseVec::new(dim, idx, vals));
        labels.push((i % 4) as u32);
    }
    (rows, labels)
}

fn deterministic_tensor(shape: &[usize], salt: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, shape)
}

fn matmul_pair(name: &str, m: usize, k: usize, n: usize, samples: usize, note: &str) -> KernelBench {
    let a = deterministic_tensor(&[m, k], 11);
    let b = deterministic_tensor(&[k, n], 29);
    entry(
        name,
        samples,
        note,
        Some(|| {
            black_box(a.matmul_reference(&b));
        }),
        || {
            black_box(a.matmul(&b));
        },
    )
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let samples = if quick { 3 } else { 9 };
    let mut benches = Vec::new();
    println!("kernels suite (quick={quick}, {samples} samples per bench)");

    // --- BoW featurization: dense materialization vs staying sparse.
    let signals = corpus(64, 600);
    let pipeline = TextPipeline::fit(Discretizer::Floor, 8, FeatureSelection::keep_all(), &signals);
    benches.push(entry(
        "bow_featurize_64x600_8gram",
        samples,
        "transform_all materializes dense rows over the full vocabulary; \
         transform_all_csr emits the same rows as CSR without densifying",
        Some(|| {
            black_box(pipeline.transform_all(&signals));
        }),
        || {
            black_box(pipeline.transform_all_csr(&signals));
        },
    ));

    // --- SVM epochs: dense Pegasos dots vs sparse dots, same RNG stream.
    let (rows, labels) = sparse_rows(300, 4096, 10);
    let csr = CsrMatrix::from_rows(&rows);
    let dense: Vec<Vec<f32>> = rows.iter().map(SparseVec::to_dense).collect();
    let cfg = SvmConfig { epochs: 5, ..Default::default() };
    benches.push(entry(
        "svm_epoch_300x4096_nnz10",
        samples,
        "5 Pegasos epochs, 4 classes; the sparse fit touches only the \
         ~10 nonzeros per row and produces the bit-identical hyperplane",
        Some(|| {
            black_box(SvmClassifier::fit(&dense, &labels, &cfg, 1));
        }),
        || {
            black_box(SvmClassifier::fit_sparse(&csr, &labels, &cfg, 1));
        },
    ));

    // --- Blocked matmul at the paper-CNN im2col shapes and the MLP head.
    benches.push(matmul_pair(
        "matmul_conv1_8x75x1024",
        8,
        75,
        1024,
        samples,
        "conv1 im2col: [8,75]x[75,1024] per 32x32 image; with only 8 \
         output rows each packed B panel feeds two register tiles, so \
         packing amortizes poorly and the shape stays bandwidth-bound \
         (~1.3-1.5x measured)",
    ));
    benches.push(matmul_pair(
        "matmul_conv2_16x200x256",
        16,
        200,
        256,
        samples,
        "conv2 im2col: [16,200]x[200,256] per 16x16 map",
    ));
    benches.push(matmul_pair(
        "matmul_mlp_64x2048x100",
        64,
        2048,
        100,
        samples,
        "text-MLP input layer: batch 64 over a 2048-feature vocabulary",
    ));

    // --- Conv forward / forward+backward at the Fig. 7 architecture.
    // Baselines emulate the pre-arena path: `reset_scratch` drops the
    // persistent im2col columns / weight-matrix views / argmax buffers
    // so every call reallocates them, exactly as the old code did. Both
    // sides run the same kernels on the same inputs; only the scratch
    // lifetime differs. `shards: Some(1)` keeps the step serial so the
    // pair isolates allocation behavior, not data parallelism.
    let batch = 16;
    let x = deterministic_tensor(&[batch, 3, 32, 32], 7);
    let y: Vec<u32> = (0..batch).map(|i| (i % 4) as u32).collect();
    let mut fwd_base = models::paper_cnn(4, 1);
    let mut fwd_net = models::paper_cnn(4, 1);
    benches.push(entry(
        "conv_forward_16imgs",
        samples,
        "paper CNN forward on 16 images (blocked im2col matmuls); \
         baseline reallocates im2col/weight-view scratch per call, \
         optimized reuses the layer arenas",
        Some(|| {
            fwd_base.reset_scratch();
            black_box(fwd_base.forward(&x, false));
        }),
        || {
            black_box(fwd_net.forward(&x, false));
        },
    ));
    let train_cfg = TrainConfig {
        epochs: 1,
        batch_size: batch,
        shards: Some(1),
        ..Default::default()
    };
    let mut bwd_base = models::paper_cnn(4, 1);
    let mut bwd_net = models::paper_cnn(4, 1);
    let mut bwd_adam = Adam::new(train_cfg.lr);
    let mut bwd_arena = TrainArena::new();
    benches.push(entry(
        "conv_fwd_bwd_16imgs",
        samples,
        "one training step on 16 images; backward uses the fused \
         matmul_at/matmul_bt kernels instead of allocating transposes; \
         baseline drops layer scratch and the training arena every \
         step, optimized keeps both warm",
        Some(|| {
            bwd_base.reset_scratch();
            black_box(train(&mut bwd_base, &x, &y, &train_cfg));
        }),
        || {
            black_box(train_in_arena(
                &mut bwd_net,
                &x,
                &y,
                &train_cfg,
                &mut bwd_adam,
                &mut bwd_arena,
            ));
        },
    ));

    let report = BenchReport {
        suite: "kernels".to_owned(),
        quick,
        samples,
        benches,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Round-trip before writing so a malformed report can never land.
    let parsed: BenchReport = serde_json::from_str(&json).expect("report parses back");
    assert_eq!(parsed.benches.len(), report.benches.len());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
