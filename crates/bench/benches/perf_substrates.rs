//! Criterion micro-benchmarks for the substrate crates: the geodata
//! path every experiment pays for (codecs, terrain sampling, route
//! generation, GPX parsing, representations).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use geoprim::{polyline, BoundingBox, LatLon};
use imgrep::{render, ImageConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use routegen::{generate_route, RouteKind, RouteParams};
use terrain::{ElevationModel, ElevationService, SyntheticTerrain};
use textrep::{Discretizer, FeatureSelection, TextPipeline};

fn sample_path(n: usize) -> Vec<LatLon> {
    let mut rng = StdRng::seed_from_u64(1);
    let bounds = BoundingBox::new(LatLon::new(38.8, -77.12), LatLon::new(39.0, -76.9));
    let params = RouteParams::segment((n as f64) * 20.0, RouteKind::Wander);
    generate_route(&mut rng, LatLon::new(38.9, -77.0), &bounds, &params)
}

fn bench_polyline(c: &mut Criterion) {
    let path = sample_path(100);
    let encoded = polyline::encode(&path);
    let mut g = c.benchmark_group("polyline");
    g.throughput(Throughput::Elements(path.len() as u64));
    g.bench_function("encode_100pts", |b| b.iter(|| polyline::encode(black_box(&path))));
    g.bench_function("decode_100pts", |b| {
        b.iter(|| polyline::decode(black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_terrain(c: &mut Criterion) {
    let terrain = SyntheticTerrain::new(7);
    let path = sample_path(100);
    let mut g = c.benchmark_group("terrain");
    g.throughput(Throughput::Elements(100));
    g.bench_function("elevation_100pts", |b| {
        b.iter(|| {
            path.iter().map(|p| terrain.elevation_at(black_box(*p))).sum::<f64>()
        })
    });
    g.bench_function("service_sample_path_200", |b| {
        let service = ElevationService::new(SyntheticTerrain::new(7));
        b.iter(|| service.sample_path(black_box(&path), 200))
    });
    g.finish();
}

fn bench_routes_and_gpx(c: &mut Criterion) {
    let mut g = c.benchmark_group("routes");
    g.bench_function("generate_5km_activity", |b| {
        let bounds = BoundingBox::new(LatLon::new(38.8, -77.12), LatLon::new(39.0, -76.9));
        let params = RouteParams::activity(5_000.0, RouteKind::Loop);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| generate_route(&mut rng, LatLon::new(38.9, -77.0), &bounds, &params))
    });
    let mut sim = routegen::AthleteSimulator::new(SyntheticTerrain::new(3), 5);
    let activity = sim.generate_one(terrain::CityId::WashingtonDc);
    let xml = activity.gpx.to_xml();
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("gpx_parse_activity", |b| {
        b.iter(|| gpxfile::Gpx::parse(black_box(&xml)).unwrap())
    });
    g.finish();
}

fn bench_representations(c: &mut Criterion) {
    let signals: Vec<Vec<f64>> = (0..100)
        .map(|i| {
            (0..80)
                .map(|t| 50.0 + ((t as f64) * 0.2 + i as f64).sin() * 20.0)
                .collect()
        })
        .collect();
    let mut g = c.benchmark_group("representations");
    g.bench_function("text_pipeline_fit_100x80", |b| {
        b.iter(|| {
            TextPipeline::fit(
                Discretizer::mined(),
                8,
                FeatureSelection::standard(),
                black_box(&signals),
            )
        })
    });
    let pipeline =
        TextPipeline::fit(Discretizer::mined(), 8, FeatureSelection::standard(), &signals);
    g.throughput(Throughput::Elements(1));
    g.bench_function("text_transform_one", |b| {
        b.iter(|| pipeline.transform(black_box(&signals[0])))
    });
    g.bench_function("image_render_one", |b| {
        b.iter(|| render(black_box(&signals[0]), &ImageConfig::default()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_polyline,
    bench_terrain,
    bench_routes_and_gpx,
    bench_representations
);
criterion_main!(benches);
