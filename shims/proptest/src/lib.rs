//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests
//! use: the [`proptest!`] macro, range / string-pattern / collection /
//! tuple strategies, `prop_map` / `prop_flat_map`, `prop_oneof!`,
//! `Just`, and the `prop_assert*` macros. Inputs are generated from a
//! deterministic per-test RNG (seeded from the test name, overridable
//! with `PROPTEST_SEED`); case counts honor
//! `ProptestConfig::with_cases` and the `PROPTEST_CASES` environment
//! variable. Failing inputs are reported in the panic message; there
//! is no shrinking.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the tests import.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, …).
    pub use crate::strategy::collection;
    pub use crate::strategy::option;
}

pub mod collection {
    //! Top-level alias (`proptest::collection::vec`).
    pub use crate::strategy::collection::*;
}

pub mod option {
    //! Top-level alias (`proptest::option::of`).
    pub use crate::strategy::option::*;
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0u32..10, v in prop::collection::vec(0i64..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                // One tuple holds every generated input so the failure
                // report can show them all.
                let inputs = (
                    $($crate::strategy::Strategy::new_value(&$strat, &mut rng),)+
                );
                let repr = format!("{:?}", inputs);
                let ( $($pat,)+ ) = inputs;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}\ninputs: {}\n{}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        repr,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Fails the enclosing property test unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property test unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the enclosing property test when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
