//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from an RNG stream.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces one value per call.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, whence, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value_obj(rng)
    }
}

trait StrategyObject {
    type Value;
    fn new_value_obj(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;

    fn new_value_obj(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);

// ---- string patterns -------------------------------------------------

/// `&str` strategies are regex-like patterns of the restricted form
/// `[class]{min,max}` (the only shape this workspace uses), where
/// `class` supports literal characters, `a-z` ranges, and a
/// `&&[^...]` subtraction clause.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        let compiled = CompiledPattern::parse(self);
        let len = if compiled.min_len == compiled.max_len {
            compiled.min_len
        } else {
            rng.gen_range(compiled.min_len..=compiled.max_len)
        };
        (0..len)
            .map(|_| compiled.alphabet[rng.gen_range(0..compiled.alphabet.len())])
            .collect()
    }
}

struct CompiledPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

impl CompiledPattern {
    fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        assert_eq!(
            chars.next(),
            Some('['),
            "proptest shim supports only `[class]{{m,n}}` patterns, got `{pattern}`"
        );
        let mut include = Vec::new();
        let mut exclude = Vec::new();
        parse_class(&mut chars, &mut include, pattern, &mut exclude);

        let (min_len, max_len) = match chars.next() {
            None => (1, 1),
            Some('{') => {
                let rest: String = chars.collect();
                let body = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unclosed quantifier in `{pattern}`"));
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some(other) => panic!("unsupported pattern suffix `{other}` in `{pattern}`"),
        };

        let alphabet: Vec<char> =
            include.into_iter().filter(|c| !exclude.contains(c)).collect();
        assert!(
            !alphabet.is_empty() || max_len == 0,
            "pattern `{pattern}` admits no characters"
        );
        Self { alphabet, min_len, max_len }
    }
}

/// Parses a character class body up to its closing `]`, pushing allowed
/// characters into `include` and subtracted ones into `exclude`.
fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    include: &mut Vec<char>,
    pattern: &str,
    exclude: &mut Vec<char>,
) {
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unclosed character class in `{pattern}`"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    include.push(p);
                }
                return;
            }
            '&' if chars.peek() == Some(&'&') => {
                if let Some(p) = pending.take() {
                    include.push(p);
                }
                chars.next();
                assert_eq!(chars.next(), Some('['), "expected `[^...]` after `&&`");
                assert_eq!(chars.next(), Some('^'), "expected `[^...]` after `&&`");
                // The subtraction clause: collect into `exclude`, then
                // expect the outer class to close immediately.
                let mut sub_exclude = Vec::new();
                parse_class(chars, exclude, pattern, &mut sub_exclude);
                assert!(sub_exclude.is_empty(), "nested `&&` is unsupported");
                assert_eq!(
                    chars.next(),
                    Some(']'),
                    "expected `]` closing the intersected class in `{pattern}`"
                );
                return;
            }
            '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = pending.take().unwrap();
                let hi = chars.next().unwrap();
                assert!(lo <= hi, "inverted range `{lo}-{hi}` in `{pattern}`");
                include.extend((lo..=hi).filter(|c| !c.is_control()));
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    include.push(p);
                }
                pending = Some(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in `{pattern}`")),
                );
            }
            c => {
                if let Some(p) = pending.take() {
                    include.push(p);
                }
                pending = Some(c);
            }
        }
    }
}

/// `prop::collection`.
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`], mirroring proptest's
    /// `SizeRange`: a bare `usize` means exactly that length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for prop::collection::vec");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range for prop::collection::vec");
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Vectors with element strategy `elem` and length drawn from
    /// `size` (a `usize`, `Range`, or `RangeInclusive`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// `prop::option`.
pub mod option {
    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::fmt::Debug;

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..9).new_value(&mut r);
            assert!((3..9).contains(&v));
            let f = (-1.5f64..2.5).new_value(&mut r);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn printable_ascii_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,24}".new_value(&mut r);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn subtraction_pattern_excludes() {
        let mut r = rng();
        for _ in 0..300 {
            let s = "[ -~&&[^<>&\"']]{0,20}".new_value(&mut r);
            assert!(!s.contains(['<', '>', '&', '"', '\'']), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn explicit_char_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-dXY]{1,6}".new_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().all(|c| "abcdXY".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let strat = (0u32..5)
            .prop_flat_map(|n| collection::vec(0u32..n.max(1), 1..4))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let len = strat.new_value(&mut r);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn union_picks_every_branch() {
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
