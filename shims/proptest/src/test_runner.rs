//! Test-runner plumbing: configuration, per-case RNG streams, and the
//! error type the `prop_assert*` macros return.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 96 }
    }
}

/// A failed property (returned by `prop_assert*`, reported by the
/// generated test body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives one property test: owns the case count and hands out one
/// deterministic RNG per case.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    /// Builds a runner for the named test. `PROPTEST_CASES` overrides
    /// the configured case count; `PROPTEST_SEED` overrides the
    /// name-derived base seed.
    pub fn new(config: Config, test_name: &str) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases)
            .max(1);
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        Self { cases, base_seed }
    }

    /// Cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for one case: every case gets its own stream, so case
    /// `i` generates the same inputs regardless of how many cases run.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.base_seed ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}
