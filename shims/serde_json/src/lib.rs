//! Offline stand-in for `serde_json`.
//!
//! Serializes the serde shim's [`Value`] model to JSON text and back.
//! Floats print through Rust's shortest-round-trip formatting, so
//! `f64`/`f32` survive serialization bit-exactly; non-finite floats use
//! the extended tokens `NaN` / `inf` / `-inf` (this workspace only
//! parses its own output).

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serializes any [`serde::Serialize`] type to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "inf" } else { "-inf" });
    } else {
        // `{:?}` is the shortest representation that round-trips.
        let s = format!("{f:?}");
        out.push_str(&s);
        // Keep a float marker so integers and floats stay distinct.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "42", "-7", "3.25", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for f in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-8] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
        let nan: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        for f in [0.1f32, 1.1, -3.7e-5, 123456.78] {
            let s = to_string(&f).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\"y\n"}"#;
        let v: Value = from_str(json).unwrap();
        let printed = to_string(&v).unwrap();
        let again: Value = from_str(&printed).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
