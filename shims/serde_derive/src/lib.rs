//! Offline stand-in for `serde_derive`.
//!
//! With no registry access there is no `syn`/`quote`, so the derive
//! input is parsed by hand from the raw [`TokenStream`]. Only the
//! shapes this workspace declares are supported: non-generic structs
//! (named, tuple, or unit) and enums (unit, tuple, or struct variants),
//! with no `#[serde(...)]` attributes. Anything else becomes a
//! `compile_error!` naming the unsupported construct.
//!
//! Field types never need to be understood: the generated code calls
//! `::serde::Serialize::to_value` / `::serde::Deserialize::from_value`
//! and lets inference pick the impl from the field's declared type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing ---------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Skips any number of `#[...]` / `#![...]` attributes.
    fn skip_attributes(&mut self) {
        while self.eat_punct('#') {
            self.eat_punct('!');
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`, `pub(super)`.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips tokens until a top-level `,`, tracking `<`/`>` depth so
    /// commas inside generic arguments don't terminate early. Consumes
    /// the comma. Returns whether any tokens were skipped.
    fn skip_until_comma(&mut self) -> bool {
        let mut depth = 0usize;
        let mut skipped = false;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        self.pos += 1;
                        return true;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
            skipped = true;
        }
        skipped
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();

    if c.eat_ident("struct") {
        let name = expect_ident(&mut c, "struct name")?;
        reject_generics(&mut c, &name)?;
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            _ => Err(format!("serde shim: unsupported struct body for `{name}`")),
        }
    } else if c.eat_ident("enum") {
        let name = expect_ident(&mut c, "enum name")?;
        reject_generics(&mut c, &name)?;
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::Enum { name, variants: parse_variants(g.stream())? })
            }
            _ => Err(format!("serde shim: missing body for enum `{name}`")),
        }
    } else {
        Err("serde shim: only structs and enums are supported".to_owned())
    }
}

fn expect_ident(c: &mut Cursor, what: &str) -> Result<String, String> {
    match c.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        _ => Err(format!("serde shim: expected {what}")),
    }
}

fn reject_generics(c: &mut Cursor, name: &str) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: generic type `{name}` is not supported by the offline derive"
            ));
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        match c.next() {
            None => break,
            Some(TokenTree::Ident(i)) => {
                fields.push(i.to_string());
                if !c.eat_punct(':') {
                    return Err(format!("serde shim: expected `:` after field `{i}`"));
                }
                c.skip_until_comma();
            }
            Some(other) => {
                return Err(format!("serde shim: unexpected token `{other}` in fields"))
            }
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut arity = 0usize;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        arity += 1;
        if !c.skip_until_comma() {
            break;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let name = match c.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => {
                return Err(format!("serde shim: unexpected token `{other}` in enum"))
            }
        };
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip its expression.
            c.skip_until_comma();
        } else {
            c.eat_punct(',');
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::derive_support::object(vec![{}])\n\
                   }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(vec![{}])\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_owned())"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}, ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::derive_support::variant_object({vname:?}, \
                                 ::serde::derive_support::object(vec![{}]))",
                                pairs.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => \
                                 ::serde::derive_support::variant_object({vname:?}, \
                                 ::serde::Value::Array(vec![{}]))",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{ {} }}\n\
                   }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::derive_support::field(value, {name:?}, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok(Self {{ {} }})\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))\n\
               }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let items = ::serde::derive_support::elements(value, {name:?}, {arity})?;\n\
                     ::std::result::Result::Ok(Self({}))\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(_value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok(Self)\n\
               }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname})"
                        ),
                        VariantKind::Named(fields) => {
                            let path = format!("{name}::{vname}");
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::derive_support::field(\
                                         payload, {path:?}, {f:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {} }})",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let path = format!("{name}::{vname}");
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                   let items = ::serde::derive_support::elements(\
                                     payload, {path:?}, {arity})?;\n\
                                   ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let (variant, payload) = \
                       ::serde::derive_support::enum_variant(value, {name:?})?;\n\
                     let _ = payload;\n\
                     match variant {{\n\
                       {},\n\
                       other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown {name} variant {{other}}\")))\n\
                     }}\n\
                   }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}
