//! Offline stand-in for `serde`.
//!
//! Real serde is format-agnostic; this shim only ever feeds
//! `serde_json`, so [`Serialize`]/[`Deserialize`] convert directly to
//! and from an in-memory JSON [`Value`]. The derive macros live in the
//! sibling `serde_derive` shim and generate impls of these traits for
//! plain structs (named or tuple fields) and enums (unit, tuple, or
//! struct variants) without `#[serde(...)]` attributes — exactly the
//! shapes this workspace declares.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (covers every `iN` plus small `uN`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with canonically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere / when missing).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self::custom(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Conversion out of a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` back from a JSON value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom("negative integer for unsigned"))?,
                    Value::UInt(u) => *u,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round trip back through `as f32`
        // restores the original bits.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

// ---- container impls -------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected {N} elements, found {}", v.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected {expected}-tuple, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// Maps serialize as arrays of `[key, value]` pairs so non-string keys
// survive the round trip without a key-encoding convention.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::from_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Canonical order so equal maps serialize identically.
        let mut pairs: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect();
        pairs.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(pairs)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Vec::from_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Helpers the derive macros expand to.
pub mod derive_support {
    use super::{Error, Value};
    use std::collections::BTreeMap;

    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Fetches `key` from an object, yielding `Null` for missing keys
    /// so `Option` fields default to `None`.
    pub fn field<'v>(value: &'v Value, type_name: &str, key: &str) -> Result<&'v Value, Error> {
        static NULL: Value = Value::Null;
        match value {
            Value::Object(m) => Ok(m.get(key).unwrap_or(&NULL)),
            other => Err(Error::expected(&format!("{type_name} object"), other)),
        }
    }

    /// Expects an array of exactly `n` elements (tuple structs/variants).
    pub fn elements<'v>(
        value: &'v Value,
        type_name: &str,
        n: usize,
    ) -> Result<&'v [Value], Error> {
        match value {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "{type_name}: expected {n} elements, found {}",
                items.len()
            ))),
            other => Err(Error::expected(&format!("{type_name} array"), other)),
        }
    }

    /// Unwraps an enum's `{"Variant": payload}` object.
    pub fn enum_variant<'v>(
        value: &'v Value,
        type_name: &str,
    ) -> Result<(&'v str, &'v Value), Error> {
        match value {
            Value::Str(name) => Ok((name.as_str(), &Value::Null)),
            Value::Object(m) if m.len() == 1 => {
                let (name, payload) = m.iter().next().unwrap();
                Ok((name.as_str(), payload))
            }
            other => Err(Error::expected(&format!("{type_name} variant"), other)),
        }
    }

    /// Wraps a payload-carrying variant.
    pub fn variant_object(name: &str, payload: Value) -> Value {
        let mut m = BTreeMap::new();
        m.insert(name.to_owned(), payload);
        Value::Object(m)
    }
}
