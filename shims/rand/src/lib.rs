//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace
//! provides the subset of the rand 0.8 API it actually uses, backed by
//! a deterministic xoshiro256** generator. Streams differ from the
//! real `rand::rngs::StdRng` (ChaCha12), which is fine: nothing in the
//! repo depends on the exact stream, only on seed-determinism.
//!
//! Supported surface: `rngs::StdRng`, `SeedableRng::{seed_from_u64,
//! from_seed}`, `Rng::{gen, gen_range, gen_bool, fill}`,
//! `seq::SliceRandom::{shuffle, choose}`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the subset of methods the workspace calls).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from raw bits via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types drawable by [`Rng::gen_range`].
///
/// Mirrors rand's `SampleUniform` so the [`SampleRange`] impls below
/// can be generic over one type parameter — that single-impl shape is
/// what lets type inference resolve unannotated float literals in
/// `gen_range(0.85..=1.0)` the way the real crate does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per call, irrelevant for simulation workloads.
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                    ((lo as $wide).wrapping_add(draw as $wide)) as $t
                } else {
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    ((lo as $wide).wrapping_add(draw as $wide)) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so `R: Rng + ?Sized` bounds work).
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro paper.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input untouched");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((heads as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
