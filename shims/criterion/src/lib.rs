//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macro surface
//! and a simple median-of-samples timing loop, so `cargo bench`
//! compiles and produces usable numbers without the real crate's
//! statistics, plotting, or CLI.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (accepted and echoed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to every group function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { sample_size: self.sample_size, _parent: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the work per iteration (echoed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("  throughput: {t:?}");
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times the routine, keeping its return value live.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a timed call per sample; sample count
        // is controlled by the caller loop in `run_benchmark`.
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher::default();
    // Warm-up.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    let best = b.samples.first().copied().unwrap_or_default();
    println!("  {name}: median {median:?}, best {best:?} over {} samples", b.samples.len());
}

/// Declares a benchmark group function, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
