//! Exercises the CLI's data path as a library: labelled GPX trees on
//! disk → dataset → attack, matching what `elevation-privacy attack`
//! does end to end.

use datasets::{Dataset, Sample};
use elevation_privacy::attack::attacker::TextAttacker;
use elevation_privacy::attack::text::{TextAttackConfig, TextModel};
use gpxfile::Gpx;
use routegen::AthleteSimulator;
use terrain::{CityId, SyntheticTerrain};
use textrep::Discretizer;

fn write_corpus(root: &std::path::Path) {
    // Several athletes per metro: each athlete's routes hug their home
    // neighbourhood's elevation band, so a single athlete can't cover
    // the metro-wide signature the attack classifies on.
    for (metro, n_per_athlete) in [(CityId::WashingtonDc, 3), (CityId::Miami, 3)] {
        let dir = root.join(metro.abbrev());
        std::fs::create_dir_all(&dir).unwrap();
        let mut i = 0;
        for athlete in [99u64, 100, 101, 102, 103] {
            let mut sim = AthleteSimulator::new(SyntheticTerrain::new(7), athlete);
            for _ in 0..n_per_athlete {
                let act = sim.generate_one(metro);
                std::fs::write(dir.join(format!("{i}.gpx")), act.gpx.to_xml()).unwrap();
                i += 1;
            }
        }
    }
}

fn load_tree(root: &std::path::Path) -> Dataset {
    let mut dirs: Vec<_> = std::fs::read_dir(root)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    let names: Vec<String> = dirs
        .iter()
        .map(|d| d.file_name().unwrap().to_str().unwrap().to_owned())
        .collect();
    let mut ds = Dataset::new(names);
    for (label, dir) in dirs.iter().enumerate() {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        files.sort();
        for f in files {
            let gpx = Gpx::parse(&std::fs::read_to_string(&f).unwrap()).unwrap();
            ds.push(Sample {
                elevation: gpx.elevation_profile(),
                label: label as u32,
                path: None,
            })
            .unwrap();
        }
    }
    ds
}

#[test]
fn gpx_tree_on_disk_trains_a_working_attacker() {
    let root =
        std::env::temp_dir().join(format!("elev-privacy-test-{}", std::process::id()));
    write_corpus(&root);
    let ds = load_tree(&root);
    assert_eq!(ds.n_classes(), 2);
    assert_eq!(ds.len(), 30);

    let cfg = TextAttackConfig { mlp_epochs: 30, ..Default::default() };
    let mut attacker = TextAttacker::fit(&ds, Discretizer::Floor, TextModel::Mlp, &cfg);

    // Fresh activities from a *different* athlete in the same metros:
    // classification must come from the metro elevation signature.
    let mut other = AthleteSimulator::new(SyntheticTerrain::new(7), 12345);
    let mut correct = 0;
    for i in 0..8 {
        let metro = [CityId::WashingtonDc, CityId::Miami][i % 2];
        let act = other.generate_one(metro);
        if attacker.predict_name(&act.elevation_profile()) == metro.abbrev() {
            correct += 1;
        }
    }
    assert!(correct >= 6, "located {correct}/8 foreign activities");
    std::fs::remove_dir_all(&root).ok();
}
