//! `ELEV_THREADS` must never change results.
//!
//! Every parallel site derives its RNG stream from the master seed and
//! the work-item index (`exec::mix_seed`), and the executor returns
//! results in submission order — so the fold summaries, tree ensembles,
//! and sweep tables are bit-identical at any thread count. These tests
//! pin that contract: each evaluates the same workload at 1, 2, and 4
//! threads and requires exact (not approximate) equality.
//!
//! Thread counts are injected via the `ELEV_THREADS` env var, which is
//! process-global, so the tests in this binary serialize on a mutex.

use std::sync::Mutex;

use classicml::{ForestConfig, RandomForest};
use datasets::{Dataset, Sample};
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use evalkit::FoldSummary;
use textrep::Discretizer;

/// Serializes env-var mutation across the tests in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("ELEV_THREADS", threads);
    let out = f();
    std::env::remove_var("ELEV_THREADS");
    out
}

/// Two separable elevation regimes, enough samples for 3 folds.
fn toy_dataset() -> Dataset {
    let mut ds = Dataset::new(vec!["low".into(), "high".into()]);
    for i in 0..24 {
        let phase = i as f64 * 0.43;
        let low: Vec<f64> =
            (0..60).map(|t| 8.0 + ((t as f64) * 0.25 + phase).sin() * 2.5).collect();
        let high: Vec<f64> =
            (0..60).map(|t| 420.0 + ((t as f64) * 0.19 + phase).cos() * 35.0).collect();
        ds.push(Sample { elevation: low, label: 0, path: None }).unwrap();
        ds.push(Sample { elevation: high, label: 1, path: None }).unwrap();
    }
    ds
}

fn quick_cfg() -> TextAttackConfig {
    TextAttackConfig {
        folds: 3,
        ngram: 4,
        mlp_epochs: 20,
        rfc_trees: 12,
        svm_epochs: 10,
        seed: 42,
        ..Default::default()
    }
}

#[test]
fn evaluate_text_is_thread_count_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = toy_dataset();
    let cfg = quick_cfg();
    for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
        let baseline: FoldSummary =
            with_threads("1", || evaluate_text(&ds, Discretizer::Floor, model, &cfg));
        for threads in ["2", "4"] {
            let parallel =
                with_threads(threads, || evaluate_text(&ds, Discretizer::Floor, model, &cfg));
            // Full summaries — every per-fold confusion matrix, not just
            // the averages — must match exactly.
            assert_eq!(parallel, baseline, "{model} differs at ELEV_THREADS={threads}");
            let (a, b) = (parallel.outcome(), baseline.outcome());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(a.f1.to_bits(), b.f1.to_bits());
        }
    }
}

#[test]
fn random_forest_is_thread_count_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = toy_dataset();
    // Tiny hand-rolled features so this exercises only the forest's
    // parallel tree fitting, not the text pipeline.
    let x: Vec<Vec<f32>> = ds
        .samples()
        .iter()
        .map(|s| {
            let mean = s.elevation.iter().sum::<f64>() / s.elevation.len() as f64;
            let max = s.elevation.iter().cloned().fold(f64::MIN, f64::max);
            vec![mean as f32, max as f32]
        })
        .collect();
    let y = ds.labels();
    let cfg = ForestConfig { n_trees: 16, ..Default::default() };
    let baseline =
        with_threads("1", || RandomForest::fit(&x, &y, &cfg, 7).predict(&x));
    for threads in ["2", "4"] {
        let parallel =
            with_threads(threads, || RandomForest::fit(&x, &y, &cfg, 7).predict(&x));
        assert_eq!(parallel, baseline, "forest differs at ELEV_THREADS={threads}");
    }
}
