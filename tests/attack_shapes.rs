//! Cross-crate integration tests asserting the paper's *shape* results
//! end-to-end on miniature corpora: who wins, in which direction, and
//! by roughly what ordering — the claims the reproduction must uphold.

use datasets::{borough_level, city_level, split, user_specific};
use elevation_privacy::attack::defense::Defense;
use elevation_privacy::attack::text::{evaluate_text, TextAttackConfig, TextModel};
use terrain::{BoroughId, CityId};
use textrep::Discretizer;

fn quick_cfg() -> TextAttackConfig {
    TextAttackConfig { folds: 3, mlp_epochs: 25, ..Default::default() }
}

fn tm1_accuracy() -> f64 {
    let ds = user_specific::build_with_counts(
        5,
        &[(CityId::WashingtonDc, 40), (CityId::Orlando, 30), (CityId::NewYorkCity, 20)],
    );
    evaluate_text(&ds, Discretizer::Floor, TextModel::Mlp, &quick_cfg())
        .outcome()
        .accuracy
}

fn tm2_accuracy() -> f64 {
    // Within-city borough inference on NYC (hardest per the paper).
    let counts: Vec<(BoroughId, usize)> = borough_level::TABLE_III
        .iter()
        .filter(|(b, _)| b.city() == CityId::NewYorkCity)
        .map(|&(b, n)| (b, (n / 20).max(9)))
        .collect();
    let ds = borough_level::build_with_counts(6, &counts);
    evaluate_text(&ds, Discretizer::mined(), TextModel::Mlp, &quick_cfg())
        .outcome()
        .accuracy
}

fn tm3_balanced() -> datasets::Dataset {
    let counts: Vec<(CityId, usize)> = city_level::TABLE_II
        .iter()
        .take(5)
        .map(|&(c, n)| (c, (n / 25).max(12)))
        .collect();
    let ds = city_level::build_with_counts(7, &counts);
    let keep: Vec<u32> = ds.classes_by_size().into_iter().take(5).collect();
    let filtered = ds.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    split::balanced_downsample(&filtered, s, 1)
}

#[test]
fn tm1_beats_tm2_the_papers_central_ordering() {
    let tm1 = tm1_accuracy();
    let tm2 = tm2_accuracy();
    assert!(
        tm1 > tm2 + 0.1,
        "TM-1 ({tm1:.3}) must clearly beat within-city TM-2 ({tm2:.3})"
    );
    assert!(tm1 > 0.8, "TM-1 should be a strong attack, got {tm1:.3}");
}

#[test]
fn tm3_beats_chance_by_a_wide_margin() {
    let ds = tm3_balanced();
    let acc = evaluate_text(&ds, Discretizer::mined(), TextModel::Mlp, &quick_cfg())
        .outcome()
        .accuracy;
    let chance = 1.0 / ds.n_classes() as f64;
    assert!(acc > chance * 2.5, "TM-3 accuracy {acc:.3} vs chance {chance:.3}");
}

#[test]
fn summary_only_defense_collapses_the_attack() {
    let ds = tm3_balanced();
    let cfg = quick_cfg();
    let baseline =
        evaluate_text(&ds, Discretizer::mined(), TextModel::Mlp, &cfg).outcome().accuracy;
    let defended = Defense::SummaryOnly { bins: 8 }.apply_to_dataset(&ds);
    let after =
        evaluate_text(&defended, Discretizer::mined(), TextModel::Mlp, &cfg).outcome().accuracy;
    assert!(
        after < baseline - 0.1,
        "summary-only should strip most signal: {baseline:.3} -> {after:.3}"
    );
}

#[test]
fn coarse_quantization_degrades_gracefully() {
    let ds = tm3_balanced();
    let cfg = quick_cfg();
    let baseline =
        evaluate_text(&ds, Discretizer::mined(), TextModel::Mlp, &cfg).outcome().accuracy;
    // Mild coarsening preserves most of the attack (coarse elevation
    // bands still identify cities); that is the cautionary finding.
    let defended = Defense::Coarsen { step_m: 5.0 }.apply_to_dataset(&ds);
    let after =
        evaluate_text(&defended, Discretizer::mined(), TextModel::Mlp, &cfg).outcome().accuracy;
    assert!(
        after > baseline - 0.25,
        "5 m coarsening should not kill the attack: {baseline:.3} -> {after:.3}"
    );
}

#[test]
fn dense_discretizer_for_dense_data_sparse_for_sparse() {
    // The paper's discretization rationale: Floor suffices for the dense
    // user-specific recordings; mined data needs 3-decimal precision.
    // Check both run end-to-end and produce sane outputs.
    let user = user_specific::build_with_counts(
        9,
        &[(CityId::WashingtonDc, 20), (CityId::Orlando, 15)],
    );
    let floor_acc = evaluate_text(&user, Discretizer::Floor, TextModel::Svm, &quick_cfg())
        .outcome()
        .accuracy;
    assert!(floor_acc > 0.6, "floor discretization on dense data: {floor_acc:.3}");
}
