//! Cross-crate plumbing tests: GPX round trips through the full data
//! path, dataset serialization, determinism of whole experiments, and
//! failure injection at the crate seams.

use datasets::{city_level, overlap, user_specific, Dataset, Sample};
use elevation_privacy::attack::attacker::TextAttacker;
use elevation_privacy::attack::image::{render_dataset, ImageAttackConfig};
use elevation_privacy::attack::text::{TextAttackConfig, TextModel};
use gpxfile::Gpx;
use terrain::{CityId, ElevationService, SyntheticTerrain};
use textrep::Discretizer;

#[test]
fn activity_survives_gpx_roundtrip_into_the_attack() {
    // Simulated athlete → GPX text (what the app exports) → parsed GPX
    // (what the adversary scrapes) → elevation profile → prediction.
    let (ds, mut athlete) = user_specific::build_with_simulator(
        3,
        &[(CityId::WashingtonDc, 25), (CityId::Orlando, 20)],
    );
    let mut attacker = TextAttacker::fit(
        &ds,
        Discretizer::Floor,
        TextModel::Svm,
        &TextAttackConfig { svm_epochs: 15, ..Default::default() },
    );
    let mut correct = 0;
    for i in 0..6 {
        let metro = [CityId::WashingtonDc, CityId::Orlando][i % 2];
        let activity = athlete.generate_one(metro);
        let xml = activity.gpx.to_xml();
        let parsed = Gpx::parse(&xml).expect("simulator emits valid GPX");
        let profile = parsed.elevation_profile();
        assert_eq!(profile.len(), activity.elevation_profile().len());
        if attacker.predict_name(&profile) == metro.name() {
            correct += 1;
        }
    }
    assert!(correct >= 4, "roundtripped profiles should still deanonymize: {correct}/6");
}

#[test]
fn dataset_serialization_preserves_experiments() {
    let ds = city_level::build_with_counts(5, &[(CityId::Miami, 15), (CityId::Duluth, 15)]);
    let json = ds.to_json().unwrap();
    let back = Dataset::from_json(&json).unwrap();
    assert_eq!(ds, back);
}

#[test]
fn whole_experiment_is_deterministic() {
    use elevation_privacy::attack::text::evaluate_text;
    let build = || {
        city_level::build_with_counts(11, &[(CityId::Tampa, 15), (CityId::SanFrancisco, 15)])
    };
    let cfg = TextAttackConfig { folds: 3, svm_epochs: 10, ..Default::default() };
    let a = evaluate_text(&build(), Discretizer::mined(), TextModel::Svm, &cfg);
    let b = evaluate_text(&build(), Discretizer::mined(), TextModel::Svm, &cfg);
    assert_eq!(a.pooled, b.pooled);
}

#[test]
fn overlap_injection_shares_exact_elevation_prefixes() {
    let ds = city_level::build_with_counts(7, &[(CityId::Miami, 20)]);
    let service = ElevationService::new(SyntheticTerrain::new(7));
    let injected = overlap::inject(&ds, 0.5, 3, &service);
    // Every injected sample's profile must be an exact prefix of some
    // original sample's profile — the leakage mechanism under test.
    let originals: Vec<&Sample> = ds.samples().iter().collect();
    let added = &injected.samples()[ds.len()..];
    assert!(!added.is_empty());
    for replica in added {
        let matches = originals.iter().any(|orig| {
            orig.elevation.len() >= replica.elevation.len()
                && orig.elevation[..replica.elevation.len()] == replica.elevation[..]
        });
        assert!(matches, "replica is not a prefix of any original");
    }
}

#[test]
fn render_dataset_is_consistent_with_profile_count() {
    let ds = city_level::build_with_counts(9, &[(CityId::Tampa, 10), (CityId::Miami, 10)]);
    let cfg = ImageAttackConfig::default();
    let x = render_dataset(&ds, &cfg.image);
    assert_eq!(x.shape(), &[20, 3, 32, 32]);
}

#[test]
fn malformed_gpx_fails_loudly_not_silently() {
    for bad in [
        "",
        "<gpx",
        "<kml></kml>",
        r#"<gpx creator="x"><trk><trkseg><trkpt lat="bad" lon="0"/></trkseg></trk></gpx>"#,
        r#"<gpx creator="x"><trk><trkseg><trkpt lat="1" lon="2"><ele>NaN</ele></trkpt></trkseg></trk></gpx>"#,
    ] {
        assert!(Gpx::parse(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn nan_elevations_do_not_poison_the_pipeline() {
    let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
    for i in 0..12 {
        let mut low: Vec<f64> = (0..40).map(|t| 5.0 + (t as f64 * 0.3).sin()).collect();
        let high: Vec<f64> = (0..40).map(|t| 500.0 + (t as f64 * 0.2).cos() * 30.0).collect();
        if i == 0 {
            low[3] = f64::NAN; // corrupt recording
            low[4] = f64::INFINITY;
        }
        ds.push(Sample { elevation: low, label: 0, path: None }).unwrap();
        ds.push(Sample { elevation: high, label: 1, path: None }).unwrap();
    }
    let mut attacker = TextAttacker::fit(
        &ds,
        Discretizer::Floor,
        TextModel::Svm,
        &TextAttackConfig { svm_epochs: 10, ..Default::default() },
    );
    // Prediction on a NaN-bearing probe must not panic.
    let probe = vec![f64::NAN, 5.0, 5.5, 6.0];
    let _ = attacker.predict(&probe);
}
